//! Query execution: dispatch a planned query to ProgXe or a baseline.

use crate::catalog::Catalog;
use crate::parser::{parse_query, ParseError};
use crate::plan::{plan, PlanError, PlannedQuery};
use progxe_baselines::{jfsl, jfsl_plus, saj, ssmj, SkyAlgo};
use progxe_core::config::ProgXeConfig;
use progxe_core::executor::ProgXe;
use progxe_core::sink::{CollectSink, ResultSink};
use progxe_core::stats::ResultTuple;
use std::fmt;

/// Which execution strategy evaluates the query.
#[derive(Debug, Clone)]
pub enum Engine {
    /// The paper's progressive framework.
    ProgXe(Box<ProgXeConfig>),
    /// Join-first/skyline-later (blocking).
    JfSl(SkyAlgo),
    /// JF-SL with push-through pruning.
    JfSlPlus(SkyAlgo),
    /// The two-batch SSMJ baseline.
    Ssmj(SkyAlgo),
    /// The Fagin-style threshold baseline.
    Saj(SkyAlgo),
}

impl Engine {
    /// ProgXe with default configuration.
    pub fn progxe() -> Self {
        Engine::ProgXe(Box::default())
    }

    /// Short name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::ProgXe(_) => "progxe",
            Engine::JfSl(_) => "jf-sl",
            Engine::JfSlPlus(_) => "jf-sl+",
            Engine::Ssmj(_) => "ssmj",
            Engine::Saj(_) => "saj",
        }
    }
}

/// Everything that can go wrong running a query end to end.
#[derive(Debug)]
pub enum QueryError {
    /// Lexical/syntactic failure.
    Parse(ParseError),
    /// Validation/compilation failure.
    Plan(PlanError),
    /// Executor failure.
    Exec(progxe_core::error::Error),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::Plan(e) => write!(f, "{e}"),
            QueryError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e)
    }
}
impl From<PlanError> for QueryError {
    fn from(e: PlanError) -> Self {
        QueryError::Plan(e)
    }
}
impl From<progxe_core::error::Error> for QueryError {
    fn from(e: progxe_core::error::Error) -> Self {
        QueryError::Exec(e)
    }
}

/// Collected output of a query run.
#[derive(Debug)]
pub struct QueryOutput {
    /// Results with row ids referring to the *original* catalog tables.
    pub results: Vec<ResultTuple>,
    /// Output attribute names, aligned with `ResultTuple::values`.
    pub output_names: Vec<String>,
}

/// Forwards batches while translating filtered row ids back to the
/// caller's original table rows.
struct TranslatingSink<'a, S: ResultSink + ?Sized> {
    inner: &'a mut S,
    r_rows: &'a [u32],
    t_rows: &'a [u32],
    buf: Vec<ResultTuple>,
}

impl<S: ResultSink + ?Sized> ResultSink for TranslatingSink<'_, S> {
    fn emit_batch(&mut self, batch: &[ResultTuple]) {
        self.buf.clear();
        self.buf.extend(batch.iter().map(|x| ResultTuple {
            r_idx: self.r_rows[x.r_idx as usize],
            t_idx: self.t_rows[x.t_idx as usize],
            values: x.values.clone(),
        }));
        self.inner.emit_batch(&self.buf);
    }
}

/// Parses, plans, and runs queries against a catalog.
pub struct QueryRunner {
    catalog: Catalog,
}

impl QueryRunner {
    /// Creates a runner over the given catalog.
    pub fn new(catalog: Catalog) -> Self {
        Self { catalog }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Parses and plans without executing (useful for inspection).
    pub fn prepare(&self, sql: &str) -> Result<PlannedQuery, QueryError> {
        let query = parse_query(sql)?;
        Ok(plan(&query, &self.catalog)?)
    }

    /// Runs `sql` with `engine`, streaming result batches into `sink`.
    /// Row ids in emitted tuples refer to the original catalog tables.
    pub fn run<S: ResultSink + ?Sized>(
        &self,
        sql: &str,
        engine: &Engine,
        sink: &mut S,
    ) -> Result<Vec<String>, QueryError> {
        let planned = self.prepare(sql)?;
        let r_view = planned.r.view();
        let t_view = planned.t.view();
        let mut translating = TranslatingSink {
            inner: sink,
            r_rows: &planned.r_rows,
            t_rows: &planned.t_rows,
            buf: Vec::new(),
        };
        match engine {
            Engine::ProgXe(config) => {
                let exec = ProgXe::new((**config).clone());
                exec.run(&r_view, &t_view, &planned.maps, &mut translating)?;
            }
            Engine::JfSl(algo) => {
                jfsl(&r_view, &t_view, &planned.maps, *algo, &mut translating);
            }
            Engine::JfSlPlus(algo) => {
                jfsl_plus(&r_view, &t_view, &planned.maps, *algo, &mut translating);
            }
            Engine::Ssmj(algo) => {
                ssmj(&r_view, &t_view, &planned.maps, *algo, &mut translating);
            }
            Engine::Saj(algo) => {
                saj(&r_view, &t_view, &planned.maps, *algo, &mut translating);
            }
        }
        Ok(planned.output_names)
    }

    /// Runs and collects all results.
    pub fn run_collect(&self, sql: &str, engine: &Engine) -> Result<QueryOutput, QueryError> {
        let mut sink = CollectSink::default();
        let output_names = self.run(sql, engine, &mut sink)?;
        Ok(QueryOutput {
            results: sink.results,
            output_names,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableSchema;
    use progxe_core::source::SourceData;

    fn q1_catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.register(
            TableSchema::new(
                "Suppliers",
                vec!["uPrice".into(), "manTime".into(), "manCap".into()],
                "country",
            ),
            SourceData::from_rows(
                3,
                &[
                    (&[10.0, 3.0, 200.0], 0),
                    (&[20.0, 1.0, 500.0], 0),
                    (&[5.0, 9.0, 50.0], 0), // filtered out by manCap >= 100
                ],
            ),
        );
        cat.register(
            TableSchema::new(
                "Transporters",
                vec!["uShipCost".into(), "shipTime".into()],
                "country",
            ),
            SourceData::from_rows(2, &[(&[2.0, 4.0], 0), (&[8.0, 1.0], 0)]),
        );
        cat
    }

    const Q1: &str = "SELECT R.id, T.id, \
         (R.uPrice + T.uShipCost) AS tCost, \
         (2 * R.manTime + T.shipTime) AS delay \
         FROM Suppliers R, Transporters T \
         WHERE R.country = T.country AND R.manCap >= 100 \
         PREFERRING LOWEST(tCost) AND LOWEST(delay)";

    #[test]
    fn all_engines_agree_on_q1() {
        let runner = QueryRunner::new(q1_catalog());
        let engines = [
            Engine::progxe(),
            Engine::JfSl(SkyAlgo::Bnl),
            Engine::JfSlPlus(SkyAlgo::Sfs),
            Engine::Ssmj(SkyAlgo::Bnl),
            Engine::Saj(SkyAlgo::Bnl),
        ];
        let mut reference: Option<Vec<(u32, u32)>> = None;
        for engine in &engines {
            let out = runner.run_collect(Q1, engine).unwrap_or_else(|_| panic!("{}", engine.name()));
            let mut ids: Vec<(u32, u32)> =
                out.results.iter().map(|x| (x.r_idx, x.t_idx)).collect();
            ids.sort_unstable();
            // SSMJ may emit batch-1 false positives; dedup against final.
            ids.dedup();
            match &reference {
                None => reference = Some(ids),
                Some(want) => {
                    for id in want {
                        assert!(ids.contains(id), "{} missing {id:?}", engine.name());
                    }
                }
            }
            assert_eq!(out.output_names, vec!["tCost", "delay"]);
        }
    }

    #[test]
    fn row_ids_refer_to_original_tables() {
        // Supplier row 2 is filtered out; surviving results must reference
        // original row ids (0, 1), never remapped ones.
        let runner = QueryRunner::new(q1_catalog());
        let out = runner.run_collect(Q1, &Engine::progxe()).unwrap();
        assert!(!out.results.is_empty());
        for r in &out.results {
            assert!(r.r_idx <= 1, "row 2 was filtered; got r_idx {}", r.r_idx);
            assert!(r.t_idx <= 1);
        }
        // (10+2, 6+4) = (12, 10) must be among the results for (r0, t0).
        let r00 = out
            .results
            .iter()
            .find(|x| x.r_idx == 0 && x.t_idx == 0)
            .expect("pair (0,0) in skyline");
        assert_eq!(r00.values, vec![12.0, 10.0]);
    }

    #[test]
    fn parse_errors_surface() {
        let runner = QueryRunner::new(q1_catalog());
        let err = runner.run_collect("SELECT nonsense", &Engine::progxe());
        assert!(matches!(err, Err(QueryError::Parse(_))));
    }

    #[test]
    fn plan_errors_surface() {
        let runner = QueryRunner::new(q1_catalog());
        let err = runner.run_collect(
            "SELECT (R.nope + T.uShipCost) AS x FROM Suppliers R, Transporters T \
             WHERE R.country = T.country PREFERRING LOWEST(x)",
            &Engine::progxe(),
        );
        assert!(matches!(err, Err(QueryError::Plan(_))));
    }

    #[test]
    fn engine_names() {
        assert_eq!(Engine::progxe().name(), "progxe");
        assert_eq!(Engine::Ssmj(SkyAlgo::Bnl).name(), "ssmj");
    }
}
