//! Query execution: dispatch a planned query to any [`ProgressiveEngine`].
//!
//! [`Engine`] is a declarative strategy description (parse/CLI-friendly);
//! [`Engine::build`] turns it into the trait object that actually executes.
//! All consumption goes through the pull-based [`QuerySession`]: the classic
//! sink-style [`QueryRunner::run`] is an adapter that drains a session, and
//! [`QueryRunner::session`] exposes the stream itself — with row ids already
//! translated back to the caller's original catalog tables.

use crate::catalog::Catalog;
use crate::parser::{parse_query, ParseError};
use crate::plan::{plan, plan_streaming, PlanError, PlannedQuery, SideFilter};
use progxe_baselines::{JfSlEngine, SajEngine, SkyAlgo, SsmjEngine};
use progxe_core::config::ProgXeConfig;
use progxe_core::driver::ExecutorBackend;
use progxe_core::executor::ProgXe;
use progxe_core::ingest::{IngestError, IngestPoll, IngestSession, SourceId, StreamSpec};
use progxe_core::session::{CancellationToken, ProgressiveEngine, QuerySession};
use progxe_core::sink::ResultSink;
use progxe_core::stats::{ExecStats, ResultTuple};
use progxe_obs::Recorder;
use progxe_runtime::{EngineRuntime, ParallelProgXe};
use std::fmt;
use std::sync::Arc;

/// Which execution strategy evaluates the query.
#[derive(Debug, Clone)]
pub enum Engine {
    /// The paper's progressive framework. Construct via
    /// [`Engine::progxe`]/[`Engine::progxe_with`]/[`Engine::progxe_threads`],
    /// which size the runtime to `config.threads`; the variant is
    /// `#[non_exhaustive]` so external code cannot *construct* a
    /// mismatched pairing. For pooled sessions the runtime's worker count
    /// is authoritative (it sizes the pool, the dispatch window, and
    /// `threads_used`) — mutating `config.threads` on an existing engine
    /// does not resize an already-shared pool.
    #[non_exhaustive]
    ProgXe {
        /// Executor configuration; `threads > 1` routes through the
        /// parallel runtime.
        config: Box<ProgXeConfig>,
        /// The engine's long-lived execution runtime: one lazily-spawned
        /// thread pool shared by every session this `Engine` (and every
        /// clone of it) opens. Never spawned while `threads == 1`.
        runtime: Arc<EngineRuntime>,
        /// Optional trace recorder attached via [`Engine::with_recorder`]:
        /// every session (batch or streaming) this engine opens emits its
        /// span/point/counter events into it. `None` keeps tracing off.
        recorder: Option<Arc<dyn Recorder>>,
    },
    /// Join-first/skyline-later (blocking).
    JfSl(SkyAlgo),
    /// JF-SL with push-through pruning.
    JfSlPlus(SkyAlgo),
    /// The two-batch SSMJ baseline.
    Ssmj(SkyAlgo),
    /// The Fagin-style threshold baseline.
    Saj(SkyAlgo),
}

impl Engine {
    /// ProgXe with the default configuration plus environment overrides
    /// ([`ProgXeConfig::from_env`]) — notably `PROGXE_THREADS`, so a
    /// deployment (or CI matrix) can turn on parallel execution for every
    /// query without touching call sites.
    #[must_use]
    pub fn progxe() -> Self {
        Self::progxe_with(ProgXeConfig::from_env())
    }

    /// ProgXe with a custom configuration. A `threads` value above 1
    /// routes execution through the parallel runtime (see
    /// [`Engine::build`]); all sessions of this `Engine` value share one
    /// lazily-spawned worker pool.
    #[must_use]
    pub fn progxe_with(config: ProgXeConfig) -> Self {
        let runtime = Arc::new(EngineRuntime::new(config.threads.get()));
        Engine::ProgXe {
            config: Box::new(config),
            runtime,
            recorder: None,
        }
    }

    /// ProgXe with `threads` tuple-level workers and otherwise default
    /// configuration.
    #[must_use]
    pub fn progxe_threads(threads: usize) -> Self {
        Self::progxe_with(ProgXeConfig::default().with_threads(threads))
    }

    /// The shared execution runtime, for ProgXe engines (`None` for the
    /// baselines, which are single-threaded by design).
    pub fn runtime(&self) -> Option<&Arc<EngineRuntime>> {
        match self {
            Engine::ProgXe { runtime, .. } => Some(runtime),
            _ => None,
        }
    }

    /// Attaches a trace [`Recorder`] (see `progxe_obs`): every session the
    /// engine opens afterwards — batch or streaming — emits span, point,
    /// and counter events into it. A no-op on the baselines, which predate
    /// the span taxonomy and report through [`ExecStats`] only.
    #[must_use]
    pub fn with_recorder(mut self, rec: Arc<dyn Recorder>) -> Self {
        if let Engine::ProgXe { recorder, .. } = &mut self {
            *recorder = Some(rec);
        }
        self
    }

    /// JF-SL with block-nested-loops.
    #[must_use]
    pub fn jfsl_bnl() -> Self {
        Engine::JfSl(SkyAlgo::Bnl)
    }

    /// JF-SL with sort-filter-skyline.
    #[must_use]
    pub fn jfsl_sfs() -> Self {
        Engine::JfSl(SkyAlgo::Sfs)
    }

    /// JF-SL+ (push-through) with sort-filter-skyline.
    #[must_use]
    pub fn jfsl_plus_sfs() -> Self {
        Engine::JfSlPlus(SkyAlgo::Sfs)
    }

    /// SSMJ with sort-filter-skyline.
    #[must_use]
    pub fn ssmj_sfs() -> Self {
        Engine::Ssmj(SkyAlgo::Sfs)
    }

    /// SAJ with sort-filter-skyline.
    #[must_use]
    pub fn saj_sfs() -> Self {
        Engine::Saj(SkyAlgo::Sfs)
    }

    /// Short name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::ProgXe { .. } => "progxe",
            Engine::JfSl(_) => "jf-sl",
            Engine::JfSlPlus(_) => "jf-sl+",
            Engine::Ssmj(_) => "ssmj",
            Engine::Saj(_) => "saj",
        }
    }

    /// Instantiates the executable engine behind this description. This is
    /// the single construction point: everything downstream — sessions,
    /// sinks, the bench harness — talks to [`ProgressiveEngine`] only.
    ///
    /// A ProgXe configuration with `threads > 1` builds the parallel
    /// engine ([`ParallelProgXe`]) *borrowing this `Engine`'s shared
    /// [`EngineRuntime`]* — repeated `build()` calls (one per session in
    /// [`QueryRunner::session`]) keep reusing the same worker pool. The
    /// session contract (`next_batch` / `take(k)` / cancellation,
    /// proven-final batches) is identical either way.
    #[must_use]
    pub fn build(&self) -> Box<dyn ProgressiveEngine> {
        match self {
            Engine::ProgXe {
                config,
                runtime,
                recorder,
            } if config.threads.get() > 1 => Box::new(
                ParallelProgXe::with_runtime((**config).clone(), Arc::clone(runtime))
                    .with_recorder_opt(recorder.clone()),
            ),
            Engine::ProgXe {
                config, recorder, ..
            } => Box::new(ProgXe::new((**config).clone()).with_recorder_opt(recorder.clone())),
            Engine::JfSl(algo) => Box::new(JfSlEngine::new(*algo)),
            Engine::JfSlPlus(algo) => Box::new(JfSlEngine::plus(*algo)),
            Engine::Ssmj(algo) => Box::new(SsmjEngine::new(*algo)),
            Engine::Saj(algo) => Box::new(SajEngine::new(*algo)),
        }
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything that can go wrong running a query end to end.
#[derive(Debug)]
pub enum QueryError {
    /// Lexical/syntactic failure.
    Parse(ParseError),
    /// Validation/compilation failure.
    Plan(PlanError),
    /// Executor failure.
    Exec(progxe_core::error::Error),
    /// Streaming-ingestion failure (bad batch, watermark regression, …).
    Ingest(IngestError),
    /// The requested engine cannot serve this consumption model (e.g.
    /// streaming ingestion on a blocking baseline).
    Unsupported(&'static str),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::Plan(e) => write!(f, "{e}"),
            QueryError::Exec(e) => write!(f, "{e}"),
            QueryError::Ingest(e) => write!(f, "{e}"),
            QueryError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e)
    }
}
impl From<PlanError> for QueryError {
    fn from(e: PlanError) -> Self {
        QueryError::Plan(e)
    }
}
impl From<progxe_core::error::Error> for QueryError {
    fn from(e: progxe_core::error::Error) -> Self {
        QueryError::Exec(e)
    }
}
impl From<IngestError> for QueryError {
    fn from(e: IngestError) -> Self {
        QueryError::Ingest(e)
    }
}

/// A running streaming SkyMapJoin query over two streaming-registered
/// tables (see
/// [`Catalog::register_streaming`](crate::catalog::Catalog::register_streaming)).
///
/// Wraps a core [`IngestSession`]: pushed rows first pass the plan's WHERE
/// filters (selection push-down, applied per batch instead of per table),
/// then enter the engine with their *table row ids* — the arrival position
/// per source, exactly the ids a materialized run would report. Filtered
/// rows still consume an id, keeping ids stable under filtering.
pub struct StreamingQuery {
    session: IngestSession,
    output_names: Vec<String>,
    r_filters: Vec<SideFilter>,
    t_filters: Vec<SideFilter>,
    /// Declared column count per side (arity-checked before filtering).
    dims: [usize; 2],
    /// Next arrival-position row id per side.
    next_id: [u32; 2],
}

impl StreamingQuery {
    /// Output attribute names, aligned with emitted
    /// [`ResultTuple::values`].
    pub fn output_names(&self) -> &[String] {
        &self.output_names
    }

    /// Pushes a batch of `(attrs, join_key)` rows for `source`. Rows
    /// failing the plan's WHERE filters are dropped (but still consume a
    /// row id). Atomic per batch, like [`IngestSession::push_with_ids`].
    pub fn push(&mut self, source: SourceId, rows: &[(&[f64], u32)]) -> Result<(), QueryError> {
        let (filters, slot) = match source {
            SourceId::R => (&self.r_filters, 0),
            SourceId::T => (&self.t_filters, 1),
        };
        // Arity is validated here, before filtering: a malformed row must
        // surface as a typed error even when a WHERE filter would have
        // dropped it (the filter could otherwise mask the defect by
        // reading past the short row's end).
        for &(attrs, _key) in rows {
            if attrs.len() != self.dims[slot] {
                return Err(QueryError::Ingest(
                    progxe_core::ingest::IngestError::Arity {
                        source,
                        expected: self.dims[slot],
                        got: attrs.len(),
                    },
                ));
            }
        }
        let base = self.next_id[slot];
        let mut kept: Vec<(u32, &[f64], u32)> = Vec::with_capacity(rows.len());
        for (i, &(attrs, key)) in rows.iter().enumerate() {
            if filters.iter().all(|&(idx, op, v)| op.eval(attrs[idx], v)) {
                kept.push((base + i as u32, attrs, key));
            }
        }
        self.session.push_with_ids(source, &kept)?;
        // Ids advance only once the batch is accepted (atomicity).
        self.next_id[slot] = base + rows.len() as u32;
        Ok(())
    }

    /// Declares that all future rows of `source` are ≥ `watermark` per
    /// column (pre-filter values).
    pub fn set_watermark(&mut self, source: SourceId, watermark: &[f64]) -> Result<(), QueryError> {
        Ok(self.session.set_watermark(source, watermark)?)
    }

    /// Declares `source` complete. Idempotent.
    pub fn close(&mut self, source: SourceId) {
        self.session.close(source);
    }

    /// Pulls the next proven-final result batch (row ids refer to the
    /// streamed tables' arrival positions).
    pub fn poll(&mut self) -> IngestPoll {
        self.session.poll()
    }

    /// Drains every currently deliverable batch.
    pub fn drain_ready(&mut self) -> Vec<progxe_core::session::ResultEvent> {
        self.session.drain_ready()
    }

    /// Requests cancellation.
    pub fn cancel(&mut self) {
        self.session.cancel();
    }

    /// A shareable handle to the underlying session's cancellation flag —
    /// e.g. for a disconnect watchdog on another thread. Dropping the
    /// query (without [`finish`](Self::finish)) also fires it.
    pub fn cancel_token(&self) -> progxe_core::session::CancellationToken {
        self.session.cancel_token()
    }

    /// Whether cancellation has been requested. Once true, [`push`] and
    /// [`set_watermark`] return [`IngestError::Cancelled`]
    /// and [`poll`] reports [`IngestPoll::Complete`] — a long-lived
    /// subscription whose consumer is gone stops accepting input.
    ///
    /// [`push`]: Self::push
    /// [`set_watermark`]: Self::set_watermark
    /// [`poll`]: Self::poll
    pub fn is_cancelled(&self) -> bool {
        self.session.is_cancelled()
    }

    /// Total result tuples delivered so far.
    pub fn emitted(&self) -> u64 {
        self.session.emitted()
    }

    /// Consumes the query and returns its statistics. A session cancelled
    /// while its sources were still open (unsubscribe, disconnect) reports
    /// `ExecStats::cancelled`; a fully drained one does not, even when its
    /// token fired afterwards.
    pub fn finish(self) -> ExecStats {
        self.session.finish()
    }
}

/// Collected output of a query run.
#[derive(Debug)]
pub struct QueryOutput {
    /// Results with row ids referring to the *original* catalog tables.
    pub results: Vec<ResultTuple>,
    /// Output attribute names, aligned with `ResultTuple::values`.
    pub output_names: Vec<String>,
    /// Engine statistics for the run.
    pub stats: progxe_core::stats::ExecStats,
}

/// Parses, plans, and runs queries against a catalog.
pub struct QueryRunner {
    catalog: Catalog,
}

impl QueryRunner {
    /// Creates a runner over the given catalog.
    pub fn new(catalog: Catalog) -> Self {
        Self { catalog }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Parses and plans without executing. The returned [`PlannedQuery`]
    /// owns the filtered sources, so any number of sessions can be opened
    /// over it (see [`session`](Self::session)).
    pub fn prepare(&self, sql: &str) -> Result<PlannedQuery, QueryError> {
        let query = parse_query(sql)?;
        Ok(plan(&query, &self.catalog)?)
    }

    /// Opens a pull-based [`QuerySession`] over a prepared query. Emitted
    /// row ids are translated back to the caller's original catalog tables;
    /// cancellation and `take(k)` behave exactly as on a raw engine
    /// session.
    pub fn session<'p>(
        &self,
        planned: &'p PlannedQuery,
        engine: &Engine,
    ) -> Result<QuerySession<'p>, QueryError> {
        let session = engine
            .build()
            .open(&planned.r.view(), &planned.t.view(), &planned.maps)?
            .with_id_translation(planned.r_rows.clone(), planned.t_rows.clone());
        Ok(session)
    }

    /// Runs `sql` with `engine`, streaming result batches into `sink`.
    /// Row ids in emitted tuples refer to the original catalog tables.
    ///
    /// Thin adapter over [`session`](Self::session), kept for sink-style
    /// consumers.
    pub fn run<S: ResultSink + ?Sized>(
        &self,
        sql: &str,
        engine: &Engine,
        sink: &mut S,
    ) -> Result<Vec<String>, QueryError> {
        let planned = self.prepare(sql)?;
        let mut session = self.session(&planned, engine)?;
        session.drain_into(sink);
        drop(session);
        Ok(planned.output_names)
    }

    /// Runs and collects all results.
    pub fn run_collect(&self, sql: &str, engine: &Engine) -> Result<QueryOutput, QueryError> {
        let planned = self.prepare(sql)?;
        let out = self.session(&planned, engine)?.collect();
        Ok(QueryOutput {
            results: out.results,
            output_names: planned.output_names,
            stats: out.stats,
        })
    }

    /// Opens a streaming SkyMapJoin query: parses and plans `sql` against
    /// the catalog's *streaming* tables, then starts a readiness-gated
    /// ingest session on `engine` (ProgXe only — the blocking baselines
    /// cannot produce anything before their inputs complete, which is the
    /// exact failure mode streaming ingestion exists to avoid).
    ///
    /// `threads > 1` on the engine routes region compute through its
    /// shared worker pool; results are identical to the inline backend.
    pub fn ingest_session(&self, sql: &str, engine: &Engine) -> Result<StreamingQuery, QueryError> {
        let query = parse_query(sql)?;
        let streaming = plan_streaming(&query, &self.catalog)?;
        let Engine::ProgXe {
            config,
            runtime,
            recorder,
        } = engine
        else {
            return Err(QueryError::Unsupported(
                "streaming ingestion requires the progxe engine",
            ));
        };
        let r_spec = StreamSpec::new(streaming.r.lo.clone(), streaming.r.hi.clone())?;
        let t_spec = StreamSpec::new(streaming.t.lo.clone(), streaming.t.hi.clone())?;
        let dims = [r_spec.dims(), t_spec.dims()];
        // Pooled-backend construction lives in one place: the runtime
        // crate's engine (same dispatch shape as `Engine::build`).
        let session = if config.threads.get() > 1 {
            ParallelProgXe::with_runtime((**config).clone(), Arc::clone(runtime))
                .with_recorder_opt(recorder.clone())
                .open_ingest(&streaming.compiled.maps, r_spec, t_spec)?
        } else {
            IngestSession::open_observed(
                config,
                &streaming.compiled.maps,
                r_spec,
                t_spec,
                ExecutorBackend::Inline,
                CancellationToken::new(),
                recorder.clone(),
            )?
        };
        Ok(StreamingQuery {
            session,
            output_names: streaming.compiled.output_names,
            r_filters: streaming.compiled.r_filters,
            t_filters: streaming.compiled.t_filters,
            dims,
            next_id: [0, 0],
        })
    }

    /// Runs and returns only the first `k` results the engine emits,
    /// stopping execution early (the engine skips its remaining work).
    /// For engines with tentative batches (SSMJ), emitted tuples may
    /// include phase-1 results the final skyline would have retracted;
    /// consume [`session`](Self::session) directly and check
    /// [`progxe_core::session::ResultEvent::proven_final`] when only
    /// guaranteed-final tuples are acceptable.
    pub fn run_take(
        &self,
        sql: &str,
        engine: &Engine,
        k: usize,
    ) -> Result<QueryOutput, QueryError> {
        let planned = self.prepare(sql)?;
        let out = self.session(&planned, engine)?.take(k);
        Ok(QueryOutput {
            results: out.results,
            output_names: planned.output_names,
            stats: out.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableSchema;
    use progxe_core::source::SourceData;

    fn q1_catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.register(
            TableSchema::new(
                "Suppliers",
                vec!["uPrice".into(), "manTime".into(), "manCap".into()],
                "country",
            ),
            SourceData::from_rows(
                3,
                &[
                    (&[10.0, 3.0, 200.0], 0),
                    (&[20.0, 1.0, 500.0], 0),
                    (&[5.0, 9.0, 50.0], 0), // filtered out by manCap >= 100
                ],
            ),
        );
        cat.register(
            TableSchema::new(
                "Transporters",
                vec!["uShipCost".into(), "shipTime".into()],
                "country",
            ),
            SourceData::from_rows(2, &[(&[2.0, 4.0], 0), (&[8.0, 1.0], 0)]),
        );
        cat
    }

    const Q1: &str = "SELECT R.id, T.id, \
         (R.uPrice + T.uShipCost) AS tCost, \
         (2 * R.manTime + T.shipTime) AS delay \
         FROM Suppliers R, Transporters T \
         WHERE R.country = T.country AND R.manCap >= 100 \
         PREFERRING LOWEST(tCost) AND LOWEST(delay)";

    #[test]
    fn all_engines_agree_on_q1() {
        let runner = QueryRunner::new(q1_catalog());
        let engines = [
            Engine::progxe(),
            Engine::jfsl_bnl(),
            Engine::jfsl_plus_sfs(),
            Engine::Ssmj(SkyAlgo::Bnl),
            Engine::Saj(SkyAlgo::Bnl),
        ];
        let mut reference: Option<Vec<(u32, u32)>> = None;
        for engine in &engines {
            let out = runner
                .run_collect(Q1, engine)
                .unwrap_or_else(|_| panic!("{engine}"));
            let mut ids: Vec<(u32, u32)> = out.results.iter().map(|x| (x.r_idx, x.t_idx)).collect();
            ids.sort_unstable();
            // SSMJ may emit batch-1 false positives; dedup against final.
            ids.dedup();
            match &reference {
                None => reference = Some(ids),
                Some(want) => {
                    for id in want {
                        assert!(ids.contains(id), "{engine} missing {id:?}");
                    }
                }
            }
            assert_eq!(out.output_names, vec!["tCost", "delay"]);
        }
    }

    const Q1_FLEX: &str = "SELECT R.id, T.id, \
         (R.uPrice + T.uShipCost) AS tCost, \
         (2 * R.manTime + T.shipTime) AS delay \
         FROM Suppliers R, Transporters T \
         WHERE R.country = T.country AND R.manCap >= 100 \
         PREFERRING LOWEST(tCost) AND LOWEST(delay) \
         WITH WEIGHTS (wc, wd) CONSTRAIN wc >= 0.45 AND wc <= 0.55";

    #[test]
    fn flexible_query_dispatches_through_every_engine() {
        let runner = QueryRunner::new(q1_catalog());
        let engines = [
            Engine::progxe(),
            Engine::progxe_threads(3),
            Engine::jfsl_bnl(),
            Engine::jfsl_plus_sfs(),
            Engine::Ssmj(SkyAlgo::Sfs),
            Engine::Saj(SkyAlgo::Bnl),
        ];
        let pareto = runner.run_collect(Q1, &Engine::progxe()).unwrap();
        let pareto_ids: Vec<(u32, u32)> =
            pareto.results.iter().map(|x| (x.r_idx, x.t_idx)).collect();
        let mut reference: Option<Vec<(u32, u32)>> = None;
        for engine in &engines {
            let out = runner
                .run_collect(Q1_FLEX, engine)
                .unwrap_or_else(|e| panic!("{engine}: {e}"));
            let mut ids: Vec<(u32, u32)> = out.results.iter().map(|x| (x.r_idx, x.t_idx)).collect();
            ids.sort_unstable();
            ids.dedup(); // SSMJ batch-1 may repeat
                         // The flexible answer is a subset of the Pareto skyline.
            for id in &ids {
                assert!(pareto_ids.contains(id), "{engine}: {id:?} not Pareto");
            }
            match &reference {
                None => reference = Some(ids),
                Some(want) => assert_eq!(&ids, want, "{engine} diverged"),
            }
        }
        assert!(!reference.unwrap().is_empty());
    }

    #[test]
    fn flexible_streaming_ingest_matches_the_batch_run() {
        let mut cat = q1_catalog();
        let sup = cat.table("suppliers").unwrap().clone();
        let tra = cat.table("transporters").unwrap().clone();
        cat.register_streaming(sup.schema.clone(), vec![0.0; 3], vec![1000.0; 3]);
        cat.register_streaming(tra.schema.clone(), vec![0.0; 2], vec![1000.0; 2]);
        let runner = QueryRunner::new(cat);
        let batch = runner.run_collect(Q1_FLEX, &Engine::progxe()).unwrap();

        let mut q = runner.ingest_session(Q1_FLEX, &Engine::progxe()).unwrap();
        for row in 0..sup.data.len() {
            q.push(
                SourceId::R,
                &[(sup.data.attrs.point(row), sup.data.join_keys[row])],
            )
            .unwrap();
        }
        q.close(SourceId::R);
        q.push(
            SourceId::T,
            &(0..tra.data.len())
                .map(|i| (tra.data.attrs.point(i), tra.data.join_keys[i]))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        q.close(SourceId::T);
        let mut streamed: Vec<(u32, u32)> = q
            .drain_ready()
            .iter()
            .flat_map(|e| e.tuples.iter().map(|t| (t.r_idx, t.t_idx)))
            .collect();
        assert!(!q.finish().cancelled);
        streamed.sort_unstable();
        let mut expected: Vec<(u32, u32)> =
            batch.results.iter().map(|t| (t.r_idx, t.t_idx)).collect();
        expected.sort_unstable();
        assert_eq!(streamed, expected);
    }

    #[test]
    fn degenerate_weights_surface_as_plan_errors() {
        let runner = QueryRunner::new(q1_catalog());
        let err = runner.run_collect(
            "SELECT (R.uPrice + T.uShipCost) AS a, (R.manTime + T.shipTime) AS b \
             FROM Suppliers R, Transporters T WHERE R.country = T.country \
             PREFERRING LOWEST(a) AND LOWEST(b) \
             WITH WEIGHTS (u, v) CONSTRAIN u >= 0.9 AND u <= 0.1",
            &Engine::progxe(),
        );
        assert!(matches!(
            err,
            Err(QueryError::Plan(PlanError::BadWeights(_)))
        ));
    }

    #[test]
    fn row_ids_refer_to_original_tables() {
        // Supplier row 2 is filtered out; surviving results must reference
        // original row ids (0, 1), never remapped ones.
        let runner = QueryRunner::new(q1_catalog());
        let out = runner.run_collect(Q1, &Engine::progxe()).unwrap();
        assert!(!out.results.is_empty());
        for r in &out.results {
            assert!(r.r_idx <= 1, "row 2 was filtered; got r_idx {}", r.r_idx);
            assert!(r.t_idx <= 1);
        }
        // (10+2, 6+4) = (12, 10) must be among the results for (r0, t0).
        let r00 = out
            .results
            .iter()
            .find(|x| x.r_idx == 0 && x.t_idx == 0)
            .expect("pair (0,0) in skyline");
        assert_eq!(r00.values, vec![12.0, 10.0]);
    }

    #[test]
    fn session_streams_translated_ids() {
        let runner = QueryRunner::new(q1_catalog());
        let planned = runner.prepare(Q1).unwrap();
        let mut session = runner.session(&planned, &Engine::progxe()).unwrap();
        let mut ids = Vec::new();
        while let Some(event) = session.next_batch() {
            assert!(event.proven_final);
            ids.extend(event.tuples.iter().map(|x| (x.r_idx, x.t_idx)));
        }
        let stats = session.finish();
        assert!(!stats.cancelled);
        ids.sort_unstable();
        let mut collected: Vec<(u32, u32)> = runner
            .run_collect(Q1, &Engine::progxe())
            .unwrap()
            .results
            .iter()
            .map(|x| (x.r_idx, x.t_idx))
            .collect();
        collected.sort_unstable();
        assert_eq!(ids, collected);
        assert!(ids.iter().all(|&(r, t)| r <= 1 && t <= 1), "original ids");
    }

    #[test]
    fn run_take_returns_first_k() {
        let runner = QueryRunner::new(q1_catalog());
        let full = runner.run_collect(Q1, &Engine::progxe()).unwrap();
        assert!(!full.results.is_empty());
        let one = runner.run_take(Q1, &Engine::progxe(), 1).unwrap();
        assert_eq!(one.results.len(), 1);
        assert_eq!(one.results[0], full.results[0]);
    }

    #[test]
    fn sessions_can_reuse_a_prepared_query() {
        let runner = QueryRunner::new(q1_catalog());
        let planned = runner.prepare(Q1).unwrap();
        let a = runner
            .session(&planned, &Engine::progxe())
            .unwrap()
            .collect();
        let b = runner
            .session(&planned, &Engine::jfsl_sfs())
            .unwrap()
            .collect();
        let mut a_ids: Vec<_> = a.results.iter().map(|x| (x.r_idx, x.t_idx)).collect();
        let mut b_ids: Vec<_> = b.results.iter().map(|x| (x.r_idx, x.t_idx)).collect();
        a_ids.sort_unstable();
        b_ids.sort_unstable();
        assert_eq!(a_ids, b_ids);
    }

    #[test]
    fn parse_errors_surface() {
        let runner = QueryRunner::new(q1_catalog());
        let err = runner.run_collect("SELECT nonsense", &Engine::progxe());
        assert!(matches!(err, Err(QueryError::Parse(_))));
    }

    #[test]
    fn plan_errors_surface() {
        let runner = QueryRunner::new(q1_catalog());
        let err = runner.run_collect(
            "SELECT (R.nope + T.uShipCost) AS x FROM Suppliers R, Transporters T \
             WHERE R.country = T.country PREFERRING LOWEST(x)",
            &Engine::progxe(),
        );
        assert!(matches!(err, Err(QueryError::Plan(_))));
    }

    #[test]
    fn threaded_engine_matches_sequential() {
        let runner = QueryRunner::new(q1_catalog());
        let seq = runner
            .run_collect(Q1, &Engine::progxe_with(ProgXeConfig::default()))
            .unwrap();
        let par = runner.run_collect(Q1, &Engine::progxe_threads(4)).unwrap();
        let mut seq_ids: Vec<(u32, u32)> = seq.results.iter().map(|x| (x.r_idx, x.t_idx)).collect();
        let mut par_ids: Vec<(u32, u32)> = par.results.iter().map(|x| (x.r_idx, x.t_idx)).collect();
        seq_ids.sort_unstable();
        par_ids.sort_unstable();
        assert_eq!(seq_ids, par_ids);
        assert_eq!(par.stats.threads_used, 4);
        assert_eq!(seq.output_names, par.output_names);
        // Dispatch picks the parallel runtime exactly when threads > 1.
        assert_eq!(Engine::progxe_threads(4).build().name(), "progxe-mt");
        assert_eq!(Engine::progxe_threads(1).build().name(), "progxe");
    }

    #[test]
    fn one_engine_shares_one_pool_across_sessions() {
        let runner = QueryRunner::new(q1_catalog());
        let engine = Engine::progxe_threads(3);
        let runtime = engine.runtime().expect("progxe has a runtime").clone();
        assert_eq!(runtime.pools_spawned(), 0, "runtime spawns lazily");
        let a = runner.run_collect(Q1, &engine).unwrap();
        let b = runner.run_collect(Q1, &engine).unwrap();
        assert_eq!(a.results, b.results);
        assert_eq!(
            runtime.pools_spawned(),
            1,
            "every session of one Engine must reuse its pool"
        );
        // Engine clones share the runtime too.
        let clone = engine.clone();
        let _ = runner.run_collect(Q1, &clone).unwrap();
        assert_eq!(runtime.pools_spawned(), 1);
        // Dropping every owner shuts the pool down (workers joined).
        let watch = runtime.pool_watch().expect("pool spawned");
        drop(engine);
        drop(clone);
        drop(runtime);
        assert!(watch.upgrade().is_none(), "pool must die with its engine");
    }

    #[test]
    fn sequential_engine_never_spawns_a_pool() {
        let runner = QueryRunner::new(q1_catalog());
        let engine = Engine::progxe_with(ProgXeConfig::default());
        let _ = runner.run_collect(Q1, &engine).unwrap();
        assert_eq!(engine.runtime().unwrap().pools_spawned(), 0);
    }

    #[test]
    fn run_take_works_through_the_parallel_engine() {
        let runner = QueryRunner::new(q1_catalog());
        let engine = Engine::progxe_threads(2);
        let full = runner.run_collect(Q1, &engine).unwrap();
        assert!(!full.results.is_empty());
        let one = runner.run_take(Q1, &engine, 1).unwrap();
        assert_eq!(one.results.len(), 1);
        assert_eq!(one.results[0], full.results[0]);
    }

    #[test]
    fn streaming_query_matches_batch_run() {
        // Register the same logical tables both ways; stream the rows in
        // two batches and compare against the materialized run.
        let mut cat = q1_catalog();
        let sup = cat.table("suppliers").unwrap().clone();
        let tra = cat.table("transporters").unwrap().clone();
        cat.register_streaming(sup.schema.clone(), vec![0.0; 3], vec![1000.0; 3]);
        cat.register_streaming(tra.schema.clone(), vec![0.0; 2], vec![1000.0; 2]);
        let runner = QueryRunner::new(cat);
        let batch = runner.run_collect(Q1, &Engine::progxe()).unwrap();

        for engine in [Engine::progxe(), Engine::progxe_threads(3)] {
            let mut q = runner.ingest_session(Q1, &engine).unwrap();
            assert_eq!(q.output_names(), &["tCost", "delay"]);
            // Supplier rows one at a time (row 2 fails manCap >= 100 and
            // must still consume id 2).
            for row in 0..sup.data.len() {
                q.push(
                    SourceId::R,
                    &[(sup.data.attrs.point(row), sup.data.join_keys[row])],
                )
                .unwrap();
            }
            q.close(SourceId::R);
            q.push(
                SourceId::T,
                &(0..tra.data.len())
                    .map(|i| (tra.data.attrs.point(i), tra.data.join_keys[i]))
                    .collect::<Vec<_>>(),
            )
            .unwrap();
            q.close(SourceId::T);
            let mut streamed: Vec<(u32, u32)> = q
                .drain_ready()
                .iter()
                .flat_map(|e| e.tuples.iter().map(|t| (t.r_idx, t.t_idx)))
                .collect();
            let stats = q.finish();
            assert!(!stats.cancelled, "{engine}");
            assert_eq!(stats.tuples_ingested, 4, "filtered row never ingested");
            streamed.sort_unstable();
            let mut expected: Vec<(u32, u32)> =
                batch.results.iter().map(|t| (t.r_idx, t.t_idx)).collect();
            expected.sort_unstable();
            assert_eq!(streamed, expected, "{engine}");
        }
    }

    #[test]
    fn dropping_a_streaming_query_mid_stream_fires_its_token() {
        // Regression companion to the core session tests: the query-layer
        // wrapper must inherit drop→cancel, on both backends — this is
        // what lets a serving layer abandon a subscription by dropping it.
        let mut cat = q1_catalog();
        let sup = cat.table("suppliers").unwrap().schema.clone();
        let tra = cat.table("transporters").unwrap().schema.clone();
        cat.register_streaming(sup, vec![0.0; 3], vec![1000.0; 3]);
        cat.register_streaming(tra, vec![0.0; 2], vec![1000.0; 2]);
        let runner = QueryRunner::new(cat);
        for engine in [Engine::progxe(), Engine::progxe_threads(3)] {
            let mut q = runner.ingest_session(Q1, &engine).unwrap();
            let token = q.cancel_token();
            q.push(SourceId::R, &[(&[1.0, 2.0, 200.0][..], 0)]).unwrap();
            assert!(!token.is_cancelled());
            drop(q);
            assert!(token.is_cancelled(), "{engine}: drop must fire the token");
        }
    }

    #[test]
    fn streaming_push_surfaces_arity_errors_even_under_filters() {
        // Q1 filters on Suppliers column 2 (manCap >= 100); a short row
        // must be a typed Arity error, never a silent filter-drop.
        let mut cat = q1_catalog();
        let sup = cat.table("suppliers").unwrap().schema.clone();
        let tra = cat.table("transporters").unwrap().schema.clone();
        cat.register_streaming(sup, vec![0.0; 3], vec![1000.0; 3]);
        cat.register_streaming(tra, vec![0.0; 2], vec![1000.0; 2]);
        let runner = QueryRunner::new(cat);
        let mut q = runner.ingest_session(Q1, &Engine::progxe()).unwrap();
        let err = q.push(SourceId::R, &[(&[1.0, 2.0][..], 0)]);
        assert!(matches!(
            err,
            Err(QueryError::Ingest(IngestError::Arity {
                expected: 3,
                got: 2,
                ..
            }))
        ));
    }

    #[test]
    fn streaming_query_rejects_baselines_and_unregistered_tables() {
        let mut cat = q1_catalog();
        let sup = cat.table("suppliers").unwrap().schema.clone();
        let tra = cat.table("transporters").unwrap().schema.clone();
        let runner = QueryRunner::new(cat.clone());
        // Registered as batch tables only → NotStreaming.
        assert!(matches!(
            runner.ingest_session(Q1, &Engine::progxe()),
            Err(QueryError::Plan(crate::plan::PlanError::NotStreaming(_)))
        ));
        cat.register_streaming(sup, vec![0.0; 3], vec![1000.0; 3]);
        cat.register_streaming(tra, vec![0.0; 2], vec![1000.0; 2]);
        let runner = QueryRunner::new(cat);
        assert!(matches!(
            runner.ingest_session(Q1, &Engine::jfsl_sfs()),
            Err(QueryError::Unsupported(_))
        ));
    }

    #[test]
    fn recorder_captures_query_layer_sessions() {
        use progxe_obs::{EventKind, Point, RingRecorder};
        let runner = QueryRunner::new(q1_catalog());
        for threads in [1, 3] {
            let ring = Arc::new(RingRecorder::new());
            let engine = Engine::progxe_with(ProgXeConfig::default().with_threads(threads))
                .with_recorder(ring.clone());
            let out = runner.run_collect(Q1, &engine).unwrap();
            assert!(!out.results.is_empty());
            let events = ring.drain();
            let emitted: u64 = events
                .iter()
                .map(|e| match e.kind {
                    EventKind::Point(Point::Emit { n, .. }) => n,
                    _ => 0,
                })
                .sum();
            assert_eq!(
                emitted,
                out.results.len() as u64,
                "threads={threads}: emit points must account for every result"
            );
            assert_eq!(ring.dropped(), 0);
        }
    }

    #[test]
    fn recorder_captures_streaming_sessions() {
        use progxe_obs::{EventKind, RingRecorder, Span};
        let mut cat = q1_catalog();
        let sup = cat.table("suppliers").unwrap().clone();
        let tra = cat.table("transporters").unwrap().clone();
        cat.register_streaming(sup.schema.clone(), vec![0.0; 3], vec![1000.0; 3]);
        cat.register_streaming(tra.schema.clone(), vec![0.0; 2], vec![1000.0; 2]);
        let runner = QueryRunner::new(cat);
        let ring = Arc::new(RingRecorder::new());
        let engine = Engine::progxe().with_recorder(ring.clone());
        let mut q = runner.ingest_session(Q1, &engine).unwrap();
        for row in 0..sup.data.len() {
            q.push(
                SourceId::R,
                &[(sup.data.attrs.point(row), sup.data.join_keys[row])],
            )
            .unwrap();
        }
        q.close(SourceId::R);
        q.push(
            SourceId::T,
            &(0..tra.data.len())
                .map(|i| (tra.data.attrs.point(i), tra.data.join_keys[i]))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        q.close(SourceId::T);
        let _ = q.drain_ready();
        assert!(!q.finish().cancelled);
        let events = ring.drain();
        let batches = events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::SpanBegin {
                        span: Span::IngestBatch { .. },
                        ..
                    }
                )
            })
            .count();
        // One per accepted push: 3 single-row R pushes + 1 T batch. The
        // filtered supplier row is dropped by the WHERE filter *before*
        // ingestion but the push itself is still an accepted (possibly
        // empty) batch.
        assert_eq!(batches, 4);
    }

    #[test]
    fn engine_names_and_display() {
        assert_eq!(Engine::progxe().name(), "progxe");
        assert_eq!(Engine::Ssmj(SkyAlgo::Bnl).name(), "ssmj");
        assert_eq!(Engine::jfsl_plus_sfs().to_string(), "jf-sl+");
        assert_eq!(Engine::saj_sfs().to_string(), "saj");
        assert_eq!(Engine::ssmj_sfs().build().name(), "ssmj");
    }
}
