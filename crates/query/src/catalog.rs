//! Catalog: table schemas and their bound data.

use progxe_core::source::SourceData;
use std::collections::HashMap;

/// Schema of one table: ordered column names. By convention every column is
/// numeric (`f64`) except the join key, which is an integer column stored
/// separately (see [`BoundTable`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name (matched case-insensitively in FROM clauses).
    pub name: String,
    /// Numeric attribute columns, in storage order.
    pub columns: Vec<String>,
    /// Name of the integer join-key column.
    pub key_column: String,
}

impl TableSchema {
    /// Creates a schema.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<String>,
        key_column: impl Into<String>,
    ) -> Self {
        Self {
            name: name.into(),
            columns,
            key_column: key_column.into(),
        }
    }

    /// Index of a numeric column.
    pub fn column_index(&self, column: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == column)
    }

    /// Whether `column` is the join-key column.
    pub fn is_key(&self, column: &str) -> bool {
        self.key_column == column
    }
}

/// A schema together with its tuples.
#[derive(Debug, Clone)]
pub struct BoundTable {
    /// The schema.
    pub schema: TableSchema,
    /// The data: attributes (matching `schema.columns`) + join keys.
    pub data: SourceData,
}

/// A schema registered for streaming ingestion: no materialized rows, but
/// declared per-column value bounds. The bounds fix the streaming input
/// grid's geometry before any row arrives (see `progxe_core::ingest`);
/// rows pushed outside them are rejected.
#[derive(Debug, Clone)]
pub struct StreamTable {
    /// The schema.
    pub schema: TableSchema,
    /// Declared per-column lower bounds (aligned with `schema.columns`).
    pub lo: Vec<f64>,
    /// Declared per-column upper bounds (aligned with `schema.columns`).
    pub hi: Vec<f64>,
}

/// A set of named tables available to queries.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, BoundTable>,
    streams: HashMap<String, StreamTable>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a table.
    ///
    /// # Panics
    /// Panics when the data's attribute arity differs from the schema.
    pub fn register(&mut self, schema: TableSchema, data: SourceData) {
        assert_eq!(
            schema.columns.len(),
            if data.is_empty() {
                schema.columns.len()
            } else {
                data.attrs.dims()
            },
            "data arity must match schema {:?}",
            schema.name
        );
        self.tables.insert(
            schema.name.to_ascii_lowercase(),
            BoundTable { schema, data },
        );
    }

    /// Looks up a table case-insensitively.
    pub fn table(&self, name: &str) -> Option<&BoundTable> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Registers (or replaces) a streaming table: a schema whose rows will
    /// arrive incrementally through a
    /// [`StreamingQuery`](crate::exec::StreamingQuery), plus declared
    /// per-column value bounds.
    ///
    /// # Panics
    /// Panics when the bounds' arity differs from the schema, or a bound
    /// pair is non-finite / inverted.
    pub fn register_streaming(&mut self, schema: TableSchema, lo: Vec<f64>, hi: Vec<f64>) {
        assert_eq!(
            schema.columns.len(),
            lo.len(),
            "declared bounds arity must match schema {:?}",
            schema.name
        );
        assert_eq!(lo.len(), hi.len(), "bounds must be parallel");
        for (l, h) in lo.iter().zip(&hi) {
            assert!(
                l.is_finite() && h.is_finite() && l <= h,
                "streaming bounds must be finite with lo <= hi ({:?})",
                schema.name
            );
        }
        self.streams.insert(
            schema.name.to_ascii_lowercase(),
            StreamTable { schema, lo, hi },
        );
    }

    /// Looks up a streaming table case-insensitively.
    pub fn streaming(&self, name: &str) -> Option<&StreamTable> {
        self.streams.get(&name.to_ascii_lowercase())
    }

    /// Registered table names (lower-cased), sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Registered streaming-table names (lower-cased), sorted.
    pub fn streaming_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.streams.keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(
            "Suppliers",
            vec!["uPrice".into(), "manTime".into()],
            "country",
        )
    }

    #[test]
    fn column_lookup() {
        let s = schema();
        assert_eq!(s.column_index("manTime"), Some(1));
        assert_eq!(s.column_index("nope"), None);
        assert!(s.is_key("country"));
        assert!(!s.is_key("uPrice"));
    }

    #[test]
    fn register_and_lookup_case_insensitive() {
        let mut cat = Catalog::new();
        let data = SourceData::from_rows(2, &[(&[1.0, 2.0], 0)]);
        cat.register(schema(), data);
        assert!(cat.table("suppliers").is_some());
        assert!(cat.table("SUPPLIERS").is_some());
        assert!(cat.table("transporters").is_none());
        assert_eq!(cat.table_names(), vec!["suppliers".to_string()]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut cat = Catalog::new();
        let data = SourceData::from_rows(1, &[(&[1.0], 0)]);
        cat.register(schema(), data);
    }
}
