//! Abstract syntax for the SkyMapJoin dialect.

use progxe_skyline::Order;

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Projected id columns (`R.id`, `T.id`) — metadata only.
    pub id_columns: Vec<ColumnRef>,
    /// Mapped output attributes: `(expr) AS name`.
    pub outputs: Vec<OutputDef>,
    /// The two sources with aliases, in FROM order.
    pub sources: [SourceRef; 2],
    /// The equi-join predicate `a.col = b.col`.
    pub join: JoinPredicate,
    /// Conjunctive filter predicates (`alias.col OP constant`).
    pub filters: Vec<FilterPredicate>,
    /// The `PREFERRING` clause: one direction per named output.
    pub preferences: Vec<(String, Order)>,
    /// Optional flexible-skyline clause:
    /// `WITH WEIGHTS (w1, …) [CONSTRAIN lin-expr {<=|>=|=} number [AND …]]`.
    /// `None` runs classical Pareto dominance.
    pub weights: Option<WeightsClause>,
}

/// The `WITH WEIGHTS` clause of a flexible-skyline query: named scoring
/// weights (bound positionally to the SELECT outputs) plus linear
/// constraints on them. Non-negativity and `Σw = 1` are implicit.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightsClause {
    /// Weight names, one per mapped output, in SELECT order.
    pub names: Vec<String>,
    /// `CONSTRAIN` conjuncts.
    pub constraints: Vec<WeightPredicate>,
}

/// A linear expression over weight names:
/// `term (('+'|'-') term)*` with `term := [number '*'] name | number`.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightExpr {
    /// `(coefficient, weight name)` terms.
    pub terms: Vec<(f64, String)>,
    /// Additive constant.
    pub constant: f64,
}

/// Comparison operators allowed in weight constraints. The weight polytope
/// must be closed, so strict `<` / `>` are rejected at parse time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightCmp {
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `=`
    Eq,
}

/// One `CONSTRAIN` conjunct: `expr OP constant`.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightPredicate {
    /// Linear left-hand side over the declared weight names.
    pub lhs: WeightExpr,
    /// Comparison.
    pub op: WeightCmp,
    /// Constant right-hand side.
    pub value: f64,
}

/// `table alias` in the FROM clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceRef {
    /// Table name as written.
    pub table: String,
    /// Binding alias (`R`, `T`).
    pub alias: String,
}

/// A qualified column reference `alias.column`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// Source alias.
    pub alias: String,
    /// Column name.
    pub column: String,
}

/// One output definition `(expr) AS name`.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputDef {
    /// Output attribute name (referenced by `PREFERRING`).
    pub name: String,
    /// Defining expression.
    pub expr: Expr,
}

/// Linear arithmetic over qualified columns:
/// `term (('+'|'-') term)*` with `term := [number '*'] alias.column | number`.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// `(coefficient, column)` terms.
    pub terms: Vec<(f64, ColumnRef)>,
    /// Additive constant.
    pub constant: f64,
}

impl Expr {
    /// A single-column expression with coefficient 1.
    pub fn column(alias: impl Into<String>, column: impl Into<String>) -> Self {
        Self {
            terms: vec![(
                1.0,
                ColumnRef {
                    alias: alias.into(),
                    column: column.into(),
                },
            )],
            constant: 0.0,
        }
    }
}

/// The equi-join predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinPredicate {
    /// Left column.
    pub left: ColumnRef,
    /// Right column.
    pub right: ColumnRef,
}

/// Comparison operators usable in filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComparisonOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl ComparisonOp {
    /// Applies the operator.
    pub fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            ComparisonOp::Eq => lhs == rhs,
            ComparisonOp::Lt => lhs < rhs,
            ComparisonOp::Le => lhs <= rhs,
            ComparisonOp::Gt => lhs > rhs,
            ComparisonOp::Ge => lhs >= rhs,
        }
    }
}

/// A filter `alias.column OP constant`.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterPredicate {
    /// Filtered column.
    pub column: ColumnRef,
    /// Operator.
    pub op: ComparisonOp,
    /// Constant right-hand side.
    pub value: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_ops_eval() {
        assert!(ComparisonOp::Eq.eval(1.0, 1.0));
        assert!(ComparisonOp::Lt.eval(1.0, 2.0));
        assert!(ComparisonOp::Le.eval(2.0, 2.0));
        assert!(ComparisonOp::Gt.eval(3.0, 2.0));
        assert!(ComparisonOp::Ge.eval(2.0, 2.0));
        assert!(!ComparisonOp::Lt.eval(2.0, 2.0));
    }

    #[test]
    fn expr_column_helper() {
        let e = Expr::column("R", "price");
        assert_eq!(e.terms.len(), 1);
        assert_eq!(e.terms[0].0, 1.0);
        assert_eq!(e.terms[0].1.column, "price");
        assert_eq!(e.constant, 0.0);
    }
}
