//! SkyMapJoin query front-end: a small SQL-with-`PREFERRING` dialect, a
//! catalog, and a planner that compiles queries onto the ProgXe executor or
//! any baseline.
//!
//! The dialect covers the paper's query class (Section II-B) — equi-join of
//! two sources, linear mapping expressions, Pareto preferences — e.g. Q1:
//!
//! ```sql
//! SELECT R.id, T.id,
//!        (R.uPrice + T.uShipCost) AS tCost,
//!        (2 * R.manTime + T.shipTime) AS delay
//! FROM Suppliers R, Transporters T
//! WHERE R.country = T.country AND R.manCap >= 100
//! PREFERRING LOWEST(tCost) AND LOWEST(delay)
//! ```
//!
//! Pipeline: [`parser`] text → [`ast`] → [`plan`] (validated against a
//! [`catalog::Catalog`]) → [`exec`] (ProgXe / JF-SL / SSMJ / SAJ).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod catalog;
pub mod exec;
pub mod parser;
pub mod plan;

pub use ast::{ComparisonOp, Expr, Query};
pub use catalog::{Catalog, StreamTable, TableSchema};
pub use exec::{Engine, QueryRunner, StreamingQuery};
pub use parser::{parse_query, ParseError};
pub use plan::{CompiledQuery, PlanError, PlannedQuery, StreamingPlan};
