//! Hand-rolled recursive-descent parser for the SkyMapJoin dialect.

use crate::ast::{
    ColumnRef, ComparisonOp, Expr, FilterPredicate, JoinPredicate, OutputDef, Query, SourceRef,
    WeightCmp, WeightExpr, WeightPredicate, WeightsClause,
};
use progxe_skyline::Order;
use std::fmt;

/// A parse failure with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    StringLit(String),
    Symbol(char), // ( ) , . * + - =
    Le,
    Ge,
    Lt,
    Gt,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn tokenize(src: &'a str) -> Result<Vec<(Tok, usize)>, ParseError> {
        let mut lx = Lexer { src, pos: 0 };
        let mut out = Vec::new();
        while let Some(t) = lx.next_token()? {
            out.push(t);
        }
        Ok(out)
    }

    fn next_token(&mut self) -> Result<Option<(Tok, usize)>, ParseError> {
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        if self.pos >= bytes.len() {
            return Ok(None);
        }
        let start = self.pos;
        let c = bytes[self.pos] as char;
        let tok = match c {
            '(' | ')' | ',' | '.' | '*' | '+' | '-' | '=' => {
                self.pos += 1;
                Tok::Symbol(c)
            }
            '<' => {
                self.pos += 1;
                if bytes.get(self.pos) == Some(&b'=') {
                    self.pos += 1;
                    Tok::Le
                } else {
                    Tok::Lt
                }
            }
            '>' => {
                self.pos += 1;
                if bytes.get(self.pos) == Some(&b'=') {
                    self.pos += 1;
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            '\'' => {
                self.pos += 1;
                let lit_start = self.pos;
                while self.pos < bytes.len() && bytes[self.pos] != b'\'' {
                    self.pos += 1;
                }
                if self.pos >= bytes.len() {
                    return Err(ParseError {
                        message: "unterminated string literal".into(),
                        offset: start,
                    });
                }
                let lit = self.src[lit_start..self.pos].to_owned();
                self.pos += 1;
                Tok::StringLit(lit)
            }
            c if c.is_ascii_digit() => {
                while self.pos < bytes.len()
                    && (bytes[self.pos].is_ascii_digit() || bytes[self.pos] == b'.')
                {
                    // A '.' only belongs to the number when followed by a digit
                    // (so `R.col` style access still lexes as ident DOT ident).
                    if bytes[self.pos] == b'.'
                        && !bytes
                            .get(self.pos + 1)
                            .map(|b| b.is_ascii_digit())
                            .unwrap_or(false)
                    {
                        break;
                    }
                    self.pos += 1;
                }
                let text = &self.src[start..self.pos];
                let value = text.parse::<f64>().map_err(|_| ParseError {
                    message: format!("bad number {text:?}"),
                    offset: start,
                })?;
                Tok::Number(value)
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while self.pos < bytes.len()
                    && (bytes[self.pos].is_ascii_alphanumeric() || bytes[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                Tok::Ident(self.src[start..self.pos].to_owned())
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character {other:?}"),
                    offset: start,
                })
            }
        };
        Ok(Some((tok, start)))
    }
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.pos).map(|&(_, o)| o).unwrap_or(self.end)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            offset: self.offset(),
        })
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect_symbol(&mut self, c: char) -> Result<(), ParseError> {
        match self.peek() {
            Some(Tok::Symbol(s)) if *s == c => {
                self.pos += 1;
                Ok(())
            }
            other => self.err(format!("expected {c:?}, found {other:?}")),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword {kw}"))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn column_ref(&mut self) -> Result<ColumnRef, ParseError> {
        let alias = self.ident()?;
        self.expect_symbol('.')?;
        let column = self.ident()?;
        Ok(ColumnRef { alias, column })
    }

    /// `term := [number '*'] alias.column | number`
    /// `expr := ['-'] term (('+'|'-') term)*`
    fn linear_expr(&mut self) -> Result<Expr, ParseError> {
        let mut expr = Expr {
            terms: Vec::new(),
            constant: 0.0,
        };
        let mut sign = 1.0;
        if let Some(Tok::Symbol('-')) = self.peek() {
            self.pos += 1;
            sign = -1.0;
        }
        loop {
            self.linear_term(&mut expr, sign)?;
            match self.peek() {
                Some(Tok::Symbol('+')) => {
                    self.pos += 1;
                    sign = 1.0;
                }
                Some(Tok::Symbol('-')) => {
                    self.pos += 1;
                    sign = -1.0;
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn linear_term(&mut self, expr: &mut Expr, sign: f64) -> Result<(), ParseError> {
        match self.peek().cloned() {
            Some(Tok::Number(n)) => {
                self.pos += 1;
                if let Some(Tok::Symbol('*')) = self.peek() {
                    self.pos += 1;
                    let col = self.column_ref()?;
                    expr.terms.push((sign * n, col));
                } else {
                    expr.constant += sign * n;
                }
                Ok(())
            }
            Some(Tok::Ident(_)) => {
                let col = self.column_ref()?;
                expr.terms.push((sign, col));
                Ok(())
            }
            other => self.err(format!("expected term, found {other:?}")),
        }
    }

    /// `wexpr := ['-'] wterm (('+'|'-') wterm)*`
    /// `wterm := [number '*'] name | number`
    fn weight_expr(&mut self) -> Result<WeightExpr, ParseError> {
        let mut expr = WeightExpr {
            terms: Vec::new(),
            constant: 0.0,
        };
        let mut sign = 1.0;
        if let Some(Tok::Symbol('-')) = self.peek() {
            self.pos += 1;
            sign = -1.0;
        }
        loop {
            match self.peek().cloned() {
                Some(Tok::Number(n)) => {
                    self.pos += 1;
                    if let Some(Tok::Symbol('*')) = self.peek() {
                        self.pos += 1;
                        let name = self.ident()?;
                        expr.terms.push((sign * n, name));
                    } else {
                        expr.constant += sign * n;
                    }
                }
                Some(Tok::Ident(_)) => {
                    let name = self.ident()?;
                    expr.terms.push((sign, name));
                }
                other => return self.err(format!("expected weight term, found {other:?}")),
            }
            match self.peek() {
                Some(Tok::Symbol('+')) => {
                    self.pos += 1;
                    sign = 1.0;
                }
                Some(Tok::Symbol('-')) => {
                    self.pos += 1;
                    sign = -1.0;
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    /// `WITH WEIGHTS (w1, …) [CONSTRAIN wexpr {<=|>=|=} number [AND …]]`
    /// — `WITH` already consumed.
    fn weights_clause(&mut self) -> Result<WeightsClause, ParseError> {
        self.expect_keyword("WEIGHTS")?;
        self.expect_symbol('(')?;
        let mut names = vec![self.ident()?];
        while matches!(self.peek(), Some(Tok::Symbol(','))) {
            self.pos += 1;
            names.push(self.ident()?);
        }
        self.expect_symbol(')')?;
        let mut constraints = Vec::new();
        if self.eat_keyword("CONSTRAIN") {
            loop {
                let lhs = self.weight_expr()?;
                let op = match self.bump() {
                    Some(Tok::Le) => WeightCmp::Le,
                    Some(Tok::Ge) => WeightCmp::Ge,
                    Some(Tok::Symbol('=')) => WeightCmp::Eq,
                    Some(Tok::Lt) | Some(Tok::Gt) => {
                        self.pos -= 1;
                        return self.err(
                            "weight constraints must use <=, >= or = \
                             (the weight polytope is closed)",
                        );
                    }
                    other => {
                        self.pos -= 1;
                        return self.err(format!(
                            "expected weight comparison (<=, >=, =), found {other:?}"
                        ));
                    }
                };
                let value = match self.bump() {
                    Some(Tok::Number(v)) => v,
                    Some(Tok::Symbol('-')) => match self.bump() {
                        Some(Tok::Number(v)) => -v,
                        other => {
                            self.pos -= 1;
                            return self.err(format!("expected number, found {other:?}"));
                        }
                    },
                    other => {
                        self.pos -= 1;
                        return self.err(format!(
                            "expected constant right-hand side, found {other:?}"
                        ));
                    }
                };
                constraints.push(WeightPredicate { lhs, op, value });
                if !self.eat_keyword("AND") {
                    break;
                }
            }
        }
        Ok(WeightsClause { names, constraints })
    }

    fn comparison_op(&mut self) -> Result<ComparisonOp, ParseError> {
        match self.bump() {
            Some(Tok::Symbol('=')) => Ok(ComparisonOp::Eq),
            Some(Tok::Lt) => Ok(ComparisonOp::Lt),
            Some(Tok::Le) => Ok(ComparisonOp::Le),
            Some(Tok::Gt) => Ok(ComparisonOp::Gt),
            Some(Tok::Ge) => Ok(ComparisonOp::Ge),
            other => {
                self.pos -= 1;
                self.err(format!("expected comparison operator, found {other:?}"))
            }
        }
    }
}

/// Parses a query in the SkyMapJoin dialect.
pub fn parse_query(src: &str) -> Result<Query, ParseError> {
    let toks = Lexer::tokenize(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        end: src.len(),
    };

    // SELECT <item>, … — items are either bare `alias.column` (id columns)
    // or `(expr) AS name` / `expr AS name` output definitions.
    p.expect_keyword("SELECT")?;
    let mut id_columns = Vec::new();
    let mut outputs = Vec::new();
    loop {
        let parenthesized = matches!(p.peek(), Some(Tok::Symbol('(')));
        if parenthesized {
            p.pos += 1;
        }
        let expr = p.linear_expr()?;
        if parenthesized {
            p.expect_symbol(')')?;
        }
        if p.eat_keyword("AS") {
            let name = p.ident()?;
            outputs.push(OutputDef { name, expr });
        } else if expr.terms.len() == 1 && expr.terms[0].0 == 1.0 && expr.constant == 0.0 {
            id_columns.push(expr.terms[0].1.clone());
        } else {
            return p.err("projection expressions must be named with AS");
        }
        if matches!(p.peek(), Some(Tok::Symbol(','))) {
            p.pos += 1;
        } else {
            break;
        }
    }

    // FROM table alias, table alias
    p.expect_keyword("FROM")?;
    let t0 = p.ident()?;
    let a0 = p.ident()?;
    p.expect_symbol(',')?;
    let t1 = p.ident()?;
    let a1 = p.ident()?;
    let sources = [
        SourceRef {
            table: t0,
            alias: a0,
        },
        SourceRef {
            table: t1,
            alias: a1,
        },
    ];

    // WHERE join-predicate [AND filter]*
    p.expect_keyword("WHERE")?;
    let mut join: Option<JoinPredicate> = None;
    let mut filters = Vec::new();
    loop {
        let left = p.column_ref()?;
        let op = p.comparison_op()?;
        match p.peek().cloned() {
            Some(Tok::Ident(_)) if op == ComparisonOp::Eq => {
                let right = p.column_ref()?;
                if join.is_some() {
                    return p.err("only one equi-join predicate is supported");
                }
                join = Some(JoinPredicate { left, right });
            }
            Some(Tok::Number(v)) => {
                p.pos += 1;
                filters.push(FilterPredicate {
                    column: left,
                    op,
                    value: v,
                });
            }
            other => return p.err(format!("expected column or number, found {other:?}")),
        }
        if !p.eat_keyword("AND") {
            break;
        }
    }
    let join = match join {
        Some(j) => j,
        None => return p.err("WHERE clause needs an equi-join predicate"),
    };

    // PREFERRING LOWEST(name) AND HIGHEST(name) …
    p.expect_keyword("PREFERRING")?;
    let mut preferences = Vec::new();
    loop {
        let dir = p.ident()?;
        let order = if dir.eq_ignore_ascii_case("LOWEST") {
            Order::Lowest
        } else if dir.eq_ignore_ascii_case("HIGHEST") {
            Order::Highest
        } else {
            return p.err(format!("expected LOWEST or HIGHEST, found {dir}"));
        };
        p.expect_symbol('(')?;
        let name = p.ident()?;
        p.expect_symbol(')')?;
        preferences.push((name, order));
        if !p.eat_keyword("AND") {
            break;
        }
    }

    // Optional flexible-skyline clause:
    // WITH WEIGHTS (w1, …) [CONSTRAIN …].
    let weights = if p.eat_keyword("WITH") {
        Some(p.weights_clause()?)
    } else {
        None
    };

    if p.peek().is_some() {
        return p.err("trailing input after PREFERRING clause");
    }
    Ok(Query {
        id_columns,
        outputs,
        sources,
        join,
        filters,
        preferences,
        weights,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q1: &str = "SELECT R.id, T.id, \
         (R.uPrice + T.uShipCost) AS tCost, \
         (2 * R.manTime + T.shipTime) AS delay \
         FROM Suppliers R, Transporters T \
         WHERE R.country = T.country AND R.manCap >= 100 \
         PREFERRING LOWEST(tCost) AND LOWEST(delay)";

    #[test]
    fn parses_q1() {
        let q = parse_query(Q1).expect("Q1 parses");
        assert_eq!(q.id_columns.len(), 2);
        assert_eq!(q.outputs.len(), 2);
        assert_eq!(q.outputs[0].name, "tCost");
        assert_eq!(q.outputs[1].name, "delay");
        assert_eq!(q.outputs[1].expr.terms[0].0, 2.0);
        assert_eq!(q.sources[0].alias, "R");
        assert_eq!(q.sources[1].table, "Transporters");
        assert_eq!(q.join.left.column, "country");
        assert_eq!(q.filters.len(), 1);
        assert_eq!(q.filters[0].op, ComparisonOp::Ge);
        assert_eq!(q.filters[0].value, 100.0);
        assert_eq!(q.preferences.len(), 2);
        assert_eq!(q.preferences[0], ("tCost".into(), Order::Lowest));
    }

    #[test]
    fn parses_highest_and_constants() {
        let q = parse_query(
            "SELECT (R.a + T.b + 5) AS score FROM X R, Y T \
             WHERE R.k = T.k PREFERRING HIGHEST(score)",
        )
        .unwrap();
        assert_eq!(q.outputs[0].expr.constant, 5.0);
        assert_eq!(q.preferences[0].1, Order::Highest);
    }

    #[test]
    fn parses_negative_terms() {
        let q = parse_query(
            "SELECT (R.a - 0.5 * T.b) AS diff FROM X R, Y T \
             WHERE R.k = T.k PREFERRING LOWEST(diff)",
        )
        .unwrap();
        let e = &q.outputs[0].expr;
        assert_eq!(e.terms.len(), 2);
        assert_eq!(e.terms[1].0, -0.5);
    }

    #[test]
    fn rejects_missing_join() {
        let err =
            parse_query("SELECT (R.a) AS x FROM A R, B T WHERE R.a >= 1 PREFERRING LOWEST(x)")
                .unwrap_err();
        assert!(err.message.contains("equi-join"), "{err}");
    }

    #[test]
    fn rejects_unnamed_expression() {
        let err =
            parse_query("SELECT (R.a + T.b) FROM A R, B T WHERE R.k = T.k PREFERRING LOWEST(x)")
                .unwrap_err();
        assert!(err.message.contains("AS"), "{err}");
    }

    #[test]
    fn rejects_two_joins() {
        let err = parse_query(
            "SELECT (R.a) AS x FROM A R, B T \
             WHERE R.k = T.k AND R.j = T.j PREFERRING LOWEST(x)",
        )
        .unwrap_err();
        assert!(err.message.contains("one equi-join"), "{err}");
    }

    #[test]
    fn rejects_bad_direction() {
        let err = parse_query("SELECT (R.a) AS x FROM A R, B T WHERE R.k = T.k PREFERRING BEST(x)")
            .unwrap_err();
        assert!(err.message.contains("LOWEST or HIGHEST"), "{err}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        let err = parse_query(
            "SELECT (R.a) AS x FROM A R, B T WHERE R.k = T.k PREFERRING LOWEST(x) LIMIT 5",
        )
        .unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
    }

    #[test]
    fn number_then_column_lexing() {
        // `2 * R.a` and `R.a2` must both lex correctly.
        let q = parse_query(
            "SELECT (2 * R.a2) AS x FROM A R, B T WHERE R.k = T.k PREFERRING LOWEST(x)",
        )
        .unwrap();
        assert_eq!(q.outputs[0].expr.terms[0].1.column, "a2");
    }

    #[test]
    fn decimal_constants() {
        let q = parse_query(
            "SELECT (1.5 * R.a + 0.25) AS x FROM A R, B T WHERE R.k = T.k \
             PREFERRING LOWEST(x)",
        )
        .unwrap();
        assert_eq!(q.outputs[0].expr.terms[0].0, 1.5);
        assert_eq!(q.outputs[0].expr.constant, 0.25);
    }

    #[test]
    fn error_carries_offset() {
        let err = parse_query("SELECT ?").unwrap_err();
        assert_eq!(err.offset, 7);
    }

    const Q1_FLEX: &str = "SELECT R.id, T.id, \
         (R.uPrice + T.uShipCost) AS tCost, \
         (2 * R.manTime + T.shipTime) AS delay \
         FROM Suppliers R, Transporters T \
         WHERE R.country = T.country \
         PREFERRING LOWEST(tCost) AND LOWEST(delay) \
         WITH WEIGHTS (wc, wd) \
         CONSTRAIN wc >= 0.3 AND wc - 0.5 * wd <= 0.4 AND wc + wd = 1";

    #[test]
    fn parses_with_weights_clause() {
        let q = parse_query(Q1_FLEX).expect("flexible Q1 parses");
        let w = q.weights.expect("weights clause present");
        assert_eq!(w.names, vec!["wc", "wd"]);
        assert_eq!(w.constraints.len(), 3);
        assert_eq!(w.constraints[0].op, WeightCmp::Ge);
        assert_eq!(w.constraints[0].value, 0.3);
        assert_eq!(
            w.constraints[1].lhs.terms,
            vec![(1.0, "wc".into()), (-0.5, "wd".into())]
        );
        assert_eq!(w.constraints[1].op, WeightCmp::Le);
        assert_eq!(w.constraints[2].op, WeightCmp::Eq);
        assert_eq!(w.constraints[2].value, 1.0);
    }

    #[test]
    fn weights_clause_is_optional() {
        let q = parse_query(
            "SELECT (R.a + T.b) AS x FROM A R, B T WHERE R.k = T.k PREFERRING LOWEST(x)",
        )
        .unwrap();
        assert!(q.weights.is_none());
    }

    #[test]
    fn weights_without_constraints_parse() {
        let q = parse_query(
            "SELECT (R.a + T.b) AS x FROM A R, B T WHERE R.k = T.k \
             PREFERRING LOWEST(x) WITH WEIGHTS (w)",
        )
        .unwrap();
        let w = q.weights.unwrap();
        assert_eq!(w.names, vec!["w"]);
        assert!(w.constraints.is_empty());
    }

    #[test]
    fn weight_constraints_allow_negative_bounds() {
        let q = parse_query(
            "SELECT (R.a + T.b) AS x, (R.a - T.b) AS y FROM A R, B T WHERE R.k = T.k \
             PREFERRING LOWEST(x) AND LOWEST(y) \
             WITH WEIGHTS (u, v) CONSTRAIN u - v >= -0.25",
        )
        .unwrap();
        let w = q.weights.unwrap();
        assert_eq!(w.constraints[0].op, WeightCmp::Ge);
        assert_eq!(w.constraints[0].value, -0.25);
    }

    #[test]
    fn strict_weight_comparisons_rejected() {
        let err = parse_query(
            "SELECT (R.a + T.b) AS x FROM A R, B T WHERE R.k = T.k \
             PREFERRING LOWEST(x) WITH WEIGHTS (w) CONSTRAIN w < 0.5",
        )
        .unwrap_err();
        assert!(err.message.contains("closed"), "{err}");
    }

    #[test]
    fn weights_clause_requires_parentheses() {
        let err = parse_query(
            "SELECT (R.a + T.b) AS x FROM A R, B T WHERE R.k = T.k \
             PREFERRING LOWEST(x) WITH WEIGHTS w",
        )
        .unwrap_err();
        assert!(err.message.contains('('), "{err}");
    }
}
