//! Planner: validates a parsed [`Query`] against a [`Catalog`] and compiles
//! it into executor-ready artifacts (filtered sources + a [`MapSet`]).

use crate::ast::{ColumnRef, ComparisonOp, Expr, Query, WeightCmp, WeightsClause};
use crate::catalog::{Catalog, StreamTable, TableSchema};
use progxe_core::fdom::{DominanceModel, FDominance, FdomError, WeightConstraint};
use progxe_core::mapping::{MapSet, MappingFunction, WeightedSum};
use progxe_core::source::SourceData;
use progxe_skyline::{Order, Preference};
use std::fmt;

/// Planning failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// FROM references a table the catalog does not know.
    UnknownTable(String),
    /// A streaming plan references a table that is not streaming-registered.
    NotStreaming(String),
    /// An expression references an alias not bound in FROM.
    UnknownAlias(String),
    /// A column is not part of its table's schema.
    UnknownColumn(String, String),
    /// The join predicate must compare the two key columns.
    BadJoin(String),
    /// The key column cannot appear in arithmetic or filters.
    KeyInExpression(String),
    /// PREFERRING names an output that does not exist.
    UnknownPreference(String),
    /// An output has no PREFERRING entry (or has several).
    PreferenceMismatch(String),
    /// The query must define at least one output.
    NoOutputs,
    /// `WITH WEIGHTS` declares a different number of weights than outputs.
    WeightArity {
        /// Weights declared.
        weights: usize,
        /// Mapped outputs defined.
        outputs: usize,
    },
    /// A weight name is declared twice.
    DuplicateWeight(String),
    /// A `CONSTRAIN` clause references an undeclared weight name.
    UnknownWeight(String),
    /// The declared weight family is degenerate (empty polytope, NaN
    /// bounds, …) — rejected at plan time so execution can never panic on
    /// it (see [`FdomError`]).
    BadWeights(FdomError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            PlanError::NotStreaming(t) => write!(
                f,
                "table {t:?} is not registered for streaming ingestion \
                 (use Catalog::register_streaming)"
            ),
            PlanError::UnknownAlias(a) => write!(f, "unknown alias {a:?}"),
            PlanError::UnknownColumn(t, c) => write!(f, "unknown column {t}.{c}"),
            PlanError::BadJoin(m) => write!(f, "bad join predicate: {m}"),
            PlanError::KeyInExpression(c) => {
                write!(f, "join-key column {c:?} cannot be used in expressions")
            }
            PlanError::UnknownPreference(n) => {
                write!(f, "PREFERRING references unknown output {n:?}")
            }
            PlanError::PreferenceMismatch(n) => {
                write!(f, "output {n:?} needs exactly one PREFERRING entry")
            }
            PlanError::NoOutputs => write!(f, "query defines no mapped outputs"),
            PlanError::WeightArity { weights, outputs } => write!(
                f,
                "WITH WEIGHTS declares {weights} weight(s) but the query defines \
                 {outputs} output(s) — weights bind positionally to outputs"
            ),
            PlanError::DuplicateWeight(n) => write!(f, "weight {n:?} declared twice"),
            PlanError::UnknownWeight(n) => {
                write!(f, "CONSTRAIN references undeclared weight {n:?}")
            }
            PlanError::BadWeights(e) => write!(f, "bad weight family: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A fully validated, executable query.
pub struct PlannedQuery {
    /// Filtered left source (rows surviving the R-side filters).
    pub r: SourceData,
    /// Filtered right source.
    pub t: SourceData,
    /// Original row id per filtered R row.
    pub r_rows: Vec<u32>,
    /// Original row id per filtered T row.
    pub t_rows: Vec<u32>,
    /// Compiled mapping functions + preference.
    pub maps: MapSet,
    /// Output attribute names, in map order.
    pub output_names: Vec<String>,
}

/// Which side of the join an alias binds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SideOf {
    R,
    T,
}

/// One compiled side filter: `(column index, comparison, literal)`.
pub type SideFilter = (usize, ComparisonOp, f64);

/// The data-independent part of a plan: compiled maps, preference, output
/// names, and per-side filters. The batch planner applies the filters to
/// materialized data; the streaming runner applies them per pushed batch.
pub struct CompiledQuery {
    /// Compiled mapping functions + preference.
    pub maps: MapSet,
    /// Output attribute names, in map order.
    pub output_names: Vec<String>,
    /// Filters on the R side (selection push-down below the join).
    pub r_filters: Vec<SideFilter>,
    /// Filters on the T side.
    pub t_filters: Vec<SideFilter>,
}

/// Validates and compiles `query` against the two source schemas — the
/// shared front half of [`plan`] and [`plan_streaming`].
pub fn compile(
    query: &Query,
    r_schema: &TableSchema,
    t_schema: &TableSchema,
) -> Result<CompiledQuery, PlanError> {
    if query.outputs.is_empty() {
        return Err(PlanError::NoOutputs);
    }
    let r_alias = &query.sources[0].alias;
    let t_alias = &query.sources[1].alias;

    let side_of = |alias: &str| -> Result<SideOf, PlanError> {
        if alias == r_alias {
            Ok(SideOf::R)
        } else if alias == t_alias {
            Ok(SideOf::T)
        } else {
            Err(PlanError::UnknownAlias(alias.to_owned()))
        }
    };
    let schema_of = |side: SideOf| -> &TableSchema {
        match side {
            SideOf::R => r_schema,
            SideOf::T => t_schema,
        }
    };

    // Validate the join predicate: key column on each side, one per side.
    {
        let ls = side_of(&query.join.left.alias)?;
        let rs = side_of(&query.join.right.alias)?;
        if ls == rs {
            return Err(PlanError::BadJoin("both sides bind the same source".into()));
        }
        for (side, col) in [(ls, &query.join.left), (rs, &query.join.right)] {
            let schema = schema_of(side);
            if !schema.is_key(&col.column) {
                return Err(PlanError::BadJoin(format!(
                    "{}.{} is not the join-key column ({})",
                    col.alias, col.column, schema.key_column
                )));
            }
        }
    }

    // Resolve a numeric column to (side, index).
    let resolve = |col: &ColumnRef| -> Result<(SideOf, usize), PlanError> {
        let side = side_of(&col.alias)?;
        let schema = schema_of(side);
        if schema.is_key(&col.column) {
            return Err(PlanError::KeyInExpression(col.column.clone()));
        }
        // `id` is implicit row identity, not a numeric attribute.
        schema
            .column_index(&col.column)
            .map(|i| (side, i))
            .ok_or_else(|| PlanError::UnknownColumn(schema.name.clone(), col.column.clone()))
    };

    // Compile outputs into weighted sums.
    let compile_expr = |expr: &Expr| -> Result<WeightedSum, PlanError> {
        let mut rw = vec![0.0; r_schema.columns.len()];
        let mut tw = vec![0.0; t_schema.columns.len()];
        for (coeff, col) in &expr.terms {
            let (side, idx) = resolve(col)?;
            match side {
                SideOf::R => rw[idx] += coeff,
                SideOf::T => tw[idx] += coeff,
            }
        }
        Ok(WeightedSum::new(rw, tw).with_constant(expr.constant))
    };

    // Match PREFERRING entries to outputs (one each, any order).
    let mut orders: Vec<Option<Order>> = vec![None; query.outputs.len()];
    for (name, order) in &query.preferences {
        let idx = query
            .outputs
            .iter()
            .position(|o| &o.name == name)
            .ok_or_else(|| PlanError::UnknownPreference(name.clone()))?;
        if orders[idx].replace(*order).is_some() {
            return Err(PlanError::PreferenceMismatch(name.clone()));
        }
    }
    let mut pref_orders = Vec::with_capacity(orders.len());
    for (o, def) in orders.iter().zip(&query.outputs) {
        pref_orders.push(o.ok_or_else(|| PlanError::PreferenceMismatch(def.name.clone()))?);
    }

    let mut maps: Vec<Box<dyn MappingFunction>> = Vec::with_capacity(query.outputs.len());
    for def in &query.outputs {
        maps.push(Box::new(compile_expr(&def.expr)?));
    }
    let mut maps =
        MapSet::new(maps, Preference::new(pref_orders)).expect("arity consistent by construction");

    // WITH WEIGHTS: compile the flexible-dominance model. Degenerate
    // families (empty polytope, NaN/negative-infeasible bounds) surface as
    // typed plan errors here — execution can never hit them.
    if let Some(clause) = &query.weights {
        let model = compile_weights(clause, query.outputs.len())?;
        maps = maps
            .with_dominance(model)
            .expect("weight dimensionality checked in compile_weights");
    }

    // Compile filters per side (selection push-down below the join).
    let mut r_filters = Vec::new();
    let mut t_filters = Vec::new();
    for fp in &query.filters {
        let (side, idx) = resolve(&fp.column)?;
        match side {
            SideOf::R => r_filters.push((idx, fp.op, fp.value)),
            SideOf::T => t_filters.push((idx, fp.op, fp.value)),
        }
    }

    Ok(CompiledQuery {
        maps,
        output_names: query.outputs.iter().map(|o| o.name.clone()).collect(),
        r_filters,
        t_filters,
    })
}

/// Compiles `query` against `catalog`.
pub fn plan(query: &Query, catalog: &Catalog) -> Result<PlannedQuery, PlanError> {
    let r_table = catalog
        .table(&query.sources[0].table)
        .ok_or_else(|| PlanError::UnknownTable(query.sources[0].table.clone()))?;
    let t_table = catalog
        .table(&query.sources[1].table)
        .ok_or_else(|| PlanError::UnknownTable(query.sources[1].table.clone()))?;
    let compiled = compile(query, &r_table.schema, &t_table.schema)?;

    let (r, r_rows) = apply_filters(&r_table.data, &compiled.r_filters);
    let (t, t_rows) = apply_filters(&t_table.data, &compiled.t_filters);

    Ok(PlannedQuery {
        r,
        t,
        r_rows,
        t_rows,
        maps: compiled.maps,
        output_names: compiled.output_names,
    })
}

/// A compiled query over two *streaming* tables: everything the batch plan
/// carries except materialized data, plus the declared value bounds that
/// fix the streaming grid geometry.
pub struct StreamingPlan {
    /// The data-independent compiled artifacts.
    pub compiled: CompiledQuery,
    /// The R-side streaming table (schema + declared bounds).
    pub r: StreamTable,
    /// The T-side streaming table.
    pub t: StreamTable,
}

/// Compiles `query` against the catalog's *streaming* tables. Both FROM
/// tables must have been registered with
/// [`Catalog::register_streaming`](crate::catalog::Catalog::register_streaming).
pub fn plan_streaming(query: &Query, catalog: &Catalog) -> Result<StreamingPlan, PlanError> {
    let lookup = |name: &str| -> Result<&StreamTable, PlanError> {
        catalog.streaming(name).ok_or_else(|| {
            if catalog.table(name).is_some() {
                PlanError::NotStreaming(name.to_owned())
            } else {
                PlanError::UnknownTable(name.to_owned())
            }
        })
    };
    let r_table = lookup(&query.sources[0].table)?;
    let t_table = lookup(&query.sources[1].table)?;
    let compiled = compile(query, &r_table.schema, &t_table.schema)?;
    Ok(StreamingPlan {
        compiled,
        r: r_table.clone(),
        t: t_table.clone(),
    })
}

/// Compiles a `WITH WEIGHTS` clause into a [`DominanceModel`]: weight
/// names bind positionally to the SELECT outputs, `CONSTRAIN` conjuncts
/// become `A·w ≤ b` rows (`≥` negated, `=` a pair of inequalities), and
/// the weight polytope's vertices are enumerated eagerly so degeneracies
/// are plan-time errors.
fn compile_weights(clause: &WeightsClause, outputs: usize) -> Result<DominanceModel, PlanError> {
    if clause.names.len() != outputs {
        return Err(PlanError::WeightArity {
            weights: clause.names.len(),
            outputs,
        });
    }
    for (i, name) in clause.names.iter().enumerate() {
        if clause.names[..i].contains(name) {
            return Err(PlanError::DuplicateWeight(name.clone()));
        }
    }
    let index_of = |name: &str| -> Result<usize, PlanError> {
        clause
            .names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| PlanError::UnknownWeight(name.to_owned()))
    };

    let k = clause.names.len();
    let mut constraints = Vec::new();
    for pred in &clause.constraints {
        let mut coeffs = vec![0.0; k];
        for (c, name) in &pred.lhs.terms {
            coeffs[index_of(name)?] += c;
        }
        // Move the lhs constant to the rhs: terms·w + c OP v ⇔ terms·w OP v − c.
        let bound = pred.value - pred.lhs.constant;
        match pred.op {
            WeightCmp::Le => constraints.push(WeightConstraint::le(coeffs, bound)),
            WeightCmp::Ge => constraints.push(WeightConstraint::le(
                coeffs.iter().map(|c| -c).collect(),
                -bound,
            )),
            WeightCmp::Eq => {
                constraints.push(WeightConstraint::le(
                    coeffs.iter().map(|c| -c).collect(),
                    -bound,
                ));
                constraints.push(WeightConstraint::le(coeffs, bound));
            }
        }
    }
    let fdom = FDominance::new(k, constraints).map_err(PlanError::BadWeights)?;
    Ok(DominanceModel::flexible(fdom))
}

fn apply_filters(data: &SourceData, filters: &[SideFilter]) -> (SourceData, Vec<u32>) {
    if filters.is_empty() {
        return (data.clone(), (0..data.len() as u32).collect());
    }
    let dims = data.attrs.dims();
    let mut out = SourceData::new(dims);
    let mut rows = Vec::new();
    for row in 0..data.len() {
        let attrs = data.attrs.point(row);
        if filters.iter().all(|&(idx, op, v)| op.eval(attrs[idx], v)) {
            out.push(attrs, data.join_keys[row]);
            rows.push(row as u32);
        }
    }
    (out, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableSchema;
    use crate::parser::parse_query;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.register(
            TableSchema::new(
                "Suppliers",
                vec!["uPrice".into(), "manTime".into(), "manCap".into()],
                "country",
            ),
            SourceData::from_rows(
                3,
                &[
                    (&[10.0, 3.0, 200.0], 0),
                    (&[20.0, 1.0, 50.0], 0),
                    (&[5.0, 9.0, 500.0], 1),
                ],
            ),
        );
        cat.register(
            TableSchema::new(
                "Transporters",
                vec!["uShipCost".into(), "shipTime".into()],
                "country",
            ),
            SourceData::from_rows(2, &[(&[2.0, 4.0], 0), (&[8.0, 1.0], 1)]),
        );
        cat
    }

    const Q1: &str = "SELECT R.id, T.id, \
         (R.uPrice + T.uShipCost) AS tCost, \
         (2 * R.manTime + T.shipTime) AS delay \
         FROM Suppliers R, Transporters T \
         WHERE R.country = T.country AND R.manCap >= 100 \
         PREFERRING LOWEST(tCost) AND LOWEST(delay)";

    #[test]
    fn plans_q1() {
        let q = parse_query(Q1).unwrap();
        let p = plan(&q, &catalog()).unwrap();
        assert_eq!(p.output_names, vec!["tCost", "delay"]);
        // Filter manCap >= 100 removes supplier row 1.
        assert_eq!(p.r_rows, vec![0, 2]);
        assert_eq!(p.t_rows, vec![0, 1]);
        // Compiled map evaluates like the SQL expression.
        let mut out = Vec::new();
        p.maps
            .eval_into(p.r.attrs.point(0), p.t.attrs.point(0), &mut out);
        assert_eq!(out, vec![10.0 + 2.0, 2.0 * 3.0 + 4.0]);
    }

    #[test]
    fn unknown_table_rejected() {
        let q = parse_query(
            "SELECT (R.a + T.b) AS x FROM Nope R, Transporters T \
             WHERE R.k = T.country PREFERRING LOWEST(x)",
        )
        .unwrap();
        assert!(matches!(
            plan(&q, &catalog()),
            Err(PlanError::UnknownTable(_))
        ));
    }

    #[test]
    fn unknown_column_rejected() {
        let q = parse_query(
            "SELECT (R.bogus + T.uShipCost) AS x FROM Suppliers R, Transporters T \
             WHERE R.country = T.country PREFERRING LOWEST(x)",
        )
        .unwrap();
        assert!(matches!(
            plan(&q, &catalog()),
            Err(PlanError::UnknownColumn(_, _))
        ));
    }

    #[test]
    fn join_must_use_key_columns() {
        let q = parse_query(
            "SELECT (R.uPrice + T.uShipCost) AS x FROM Suppliers R, Transporters T \
             WHERE R.uPrice = T.uShipCost PREFERRING LOWEST(x)",
        )
        .unwrap();
        assert!(matches!(plan(&q, &catalog()), Err(PlanError::BadJoin(_))));
    }

    #[test]
    fn key_in_expression_rejected() {
        let q = parse_query(
            "SELECT (R.country + T.uShipCost) AS x FROM Suppliers R, Transporters T \
             WHERE R.country = T.country PREFERRING LOWEST(x)",
        )
        .unwrap();
        assert!(matches!(
            plan(&q, &catalog()),
            Err(PlanError::KeyInExpression(_))
        ));
    }

    #[test]
    fn preference_must_cover_outputs() {
        let q = parse_query(
            "SELECT (R.uPrice + T.uShipCost) AS a, (R.manTime + T.shipTime) AS b \
             FROM Suppliers R, Transporters T \
             WHERE R.country = T.country PREFERRING LOWEST(a)",
        )
        .unwrap();
        assert!(matches!(
            plan(&q, &catalog()),
            Err(PlanError::PreferenceMismatch(_))
        ));
    }

    #[test]
    fn unknown_preference_rejected() {
        let q = parse_query(
            "SELECT (R.uPrice + T.uShipCost) AS a FROM Suppliers R, Transporters T \
             WHERE R.country = T.country PREFERRING LOWEST(zzz)",
        )
        .unwrap();
        assert!(matches!(
            plan(&q, &catalog()),
            Err(PlanError::UnknownPreference(_))
        ));
    }

    const Q1_FLEX: &str = "SELECT R.id, T.id, \
         (R.uPrice + T.uShipCost) AS tCost, \
         (2 * R.manTime + T.shipTime) AS delay \
         FROM Suppliers R, Transporters T \
         WHERE R.country = T.country \
         PREFERRING LOWEST(tCost) AND LOWEST(delay) \
         WITH WEIGHTS (wc, wd) CONSTRAIN wc >= 0.3 AND wc <= 0.7";

    #[test]
    fn plans_flexible_weights_into_a_model() {
        let q = parse_query(Q1_FLEX).unwrap();
        let p = plan(&q, &catalog()).unwrap();
        let fdom = p.maps.dominance().as_flexible().expect("flexible model");
        assert_eq!(fdom.dims(), 2);
        assert_eq!(fdom.vertex_count(), 2, "band in 2-d has two vertices");
        // Vertices are (0.3, 0.7) and (0.7, 0.3) up to order.
        let mut firsts: Vec<f64> = fdom.vertices().map(|v| v[0]).collect();
        firsts.sort_by(f64::total_cmp);
        assert!((firsts[0] - 0.3).abs() < 1e-9);
        assert!((firsts[1] - 0.7).abs() < 1e-9);
    }

    #[test]
    fn queries_without_weights_stay_pareto() {
        let q = parse_query(Q1).unwrap();
        let p = plan(&q, &catalog()).unwrap();
        assert!(p.maps.dominance().is_pareto());
    }

    #[test]
    fn weight_arity_mismatch_rejected() {
        let q = parse_query(
            "SELECT (R.uPrice + T.uShipCost) AS a FROM Suppliers R, Transporters T \
             WHERE R.country = T.country PREFERRING LOWEST(a) WITH WEIGHTS (u, v)",
        )
        .unwrap();
        assert!(matches!(
            plan(&q, &catalog()),
            Err(PlanError::WeightArity {
                weights: 2,
                outputs: 1
            })
        ));
    }

    #[test]
    fn duplicate_and_unknown_weights_rejected() {
        let q = parse_query(
            "SELECT (R.uPrice + T.uShipCost) AS a, (R.manTime + T.shipTime) AS b \
             FROM Suppliers R, Transporters T WHERE R.country = T.country \
             PREFERRING LOWEST(a) AND LOWEST(b) WITH WEIGHTS (w, w)",
        )
        .unwrap();
        assert!(matches!(
            plan(&q, &catalog()),
            Err(PlanError::DuplicateWeight(_))
        ));
        let q = parse_query(
            "SELECT (R.uPrice + T.uShipCost) AS a, (R.manTime + T.shipTime) AS b \
             FROM Suppliers R, Transporters T WHERE R.country = T.country \
             PREFERRING LOWEST(a) AND LOWEST(b) \
             WITH WEIGHTS (u, v) CONSTRAIN zz <= 0.5",
        )
        .unwrap();
        assert!(matches!(
            plan(&q, &catalog()),
            Err(PlanError::UnknownWeight(_))
        ));
    }

    #[test]
    fn degenerate_weight_families_are_plan_errors_not_panics() {
        // Empty polytope: u >= 0.9 and u <= 0.1.
        let q = parse_query(
            "SELECT (R.uPrice + T.uShipCost) AS a, (R.manTime + T.shipTime) AS b \
             FROM Suppliers R, Transporters T WHERE R.country = T.country \
             PREFERRING LOWEST(a) AND LOWEST(b) \
             WITH WEIGHTS (u, v) CONSTRAIN u >= 0.9 AND u <= 0.1",
        )
        .unwrap();
        assert!(matches!(
            plan(&q, &catalog()),
            Err(PlanError::BadWeights(
                progxe_core::fdom::FdomError::EmptyPolytope
            ))
        ));
        // Negative bound conflicting with w ≥ 0.
        let q = parse_query(
            "SELECT (R.uPrice + T.uShipCost) AS a, (R.manTime + T.shipTime) AS b \
             FROM Suppliers R, Transporters T WHERE R.country = T.country \
             PREFERRING LOWEST(a) AND LOWEST(b) \
             WITH WEIGHTS (u, v) CONSTRAIN u <= -0.5",
        )
        .unwrap();
        assert!(matches!(
            plan(&q, &catalog()),
            Err(PlanError::BadWeights(
                progxe_core::fdom::FdomError::EmptyPolytope
            ))
        ));
    }

    #[test]
    fn equality_weight_constraint_pins_the_family() {
        // u = 0.5 leaves a single weight vector: the flexible skyline
        // degenerates to the argmin of that weighted sum.
        let q = parse_query(
            "SELECT (R.uPrice + T.uShipCost) AS a, (R.manTime + T.shipTime) AS b \
             FROM Suppliers R, Transporters T WHERE R.country = T.country \
             PREFERRING LOWEST(a) AND LOWEST(b) \
             WITH WEIGHTS (u, v) CONSTRAIN u = 0.5",
        )
        .unwrap();
        let p = plan(&q, &catalog()).unwrap();
        let fdom = p.maps.dominance().as_flexible().unwrap();
        assert_eq!(fdom.vertex_count(), 1);
    }

    #[test]
    fn self_join_alias_collision_rejected() {
        let q = parse_query(
            "SELECT (R.uPrice + X.uPrice) AS x FROM Suppliers R, Suppliers X \
             WHERE R.country = R.country PREFERRING LOWEST(x)",
        )
        .unwrap();
        assert!(matches!(plan(&q, &catalog()), Err(PlanError::BadJoin(_))));
    }
}
