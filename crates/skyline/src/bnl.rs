//! Block-Nested-Loops (BNL) skyline.
//!
//! The window algorithm of Börzsönyi, Kossmann & Stocker (ICDE 2001) with an
//! unbounded in-memory window (the setting relevant for this workspace: all
//! baselines of the paper are main-memory algorithms). Every incoming tuple
//! is compared against the current window; dominated incomers are dropped,
//! and incomers that dominate window entries evict them.

use crate::dominance::Dominance;
use crate::{kernel, PointStore, Preference, SkylineResult, SkylineStats};

/// Computes the skyline of `store` under `pref` with the BNL window
/// algorithm. Output order is unspecified (window order).
pub fn bnl_skyline(store: &PointStore, pref: &Preference) -> SkylineResult {
    bnl_skyline_under(store, pref)
}

/// [`bnl_skyline`] generalized over any [`Dominance`] model. BNL's window
/// maintenance only needs the relation to be a strict partial order, so the
/// same single pass computes flexible (F-dominance) skylines.
///
/// The whole input is projected into the model's kernel space once, then the
/// window scan runs on the batched kernels of [`crate::kernel`] — a
/// dominated-incomer probe followed, only for survivors, by a one-shot
/// eviction mask. The window invariant (members are mutually non-dominated)
/// means a dominated incomer can never evict anyone, so probing first is
/// exactly equivalent to the classic interleaved scan, and replaying the
/// eviction mask left-to-right with `swap_remove` reproduces the classic
/// window order bit-for-bit.
pub fn bnl_skyline_under<D: Dominance>(store: &PointStore, dom: &D) -> SkylineResult {
    assert_eq!(store.dims(), dom.dims(), "store/dominance dims mismatch");
    let kd = dom.kernel_dims();
    let mut kbuf = Vec::new();
    let kdata = kernel::project_store(dom, store, &mut kbuf);
    let mut window: Vec<usize> = Vec::new();
    // Kernel-space payloads of the live window, compacted in lockstep.
    let mut wpoints = PointStore::new(kd);
    let mut mask: Vec<bool> = Vec::new();
    let mut stats = SkylineStats::default();
    for i in 0..store.len() {
        stats.tuples_scanned += 1;
        let p = &kdata[i * kd..(i + 1) * kd];
        if kernel::any_dominates(kd, wpoints.raw(), p, &mut stats.dominance_tests) {
            continue;
        }
        mask.clear();
        mask.resize(window.len(), false);
        if kernel::dominated_mask(kd, wpoints.raw(), p, &mut mask, &mut stats.dominance_tests) > 0 {
            let mut w = 0;
            while w < window.len() {
                if mask[w] {
                    mask.swap_remove(w);
                    window.swap_remove(w);
                    wpoints.swap_remove(w);
                } else {
                    w += 1;
                }
            }
        }
        window.push(i);
        wpoints.push(p);
    }
    SkylineResult {
        indices: window,
        stats,
    }
}

/// Incremental BNL window over borrowed points.
///
/// The baselines (JF-SL, SSMJ) and ProgXe's per-cell maintenance all need a
/// *streaming* skyline: tuples arrive one at a time and the current
/// non-dominated set must be queryable at any moment. `BnlWindow` stores the
/// point payloads itself (copied on admission) together with a caller-chosen
/// tag.
#[derive(Debug, Clone)]
pub struct BnlWindow<T> {
    pref: Preference,
    points: PointStore,
    tags: Vec<T>,
    /// Live entries: parallel indices into `points`/`tags`. Evicted entries
    /// are swap-removed from this list; storage is compacted lazily.
    live: Vec<u32>,
    /// Oriented (kernel-space) payloads of the live entries, compacted in
    /// lockstep with `live` so the batched kernels can scan them flat.
    kpoints: PointStore,
    scratch: Vec<f64>,
    mask: Vec<bool>,
    stats: SkylineStats,
}

impl<T: Clone> BnlWindow<T> {
    /// Creates an empty window for the given preference.
    pub fn new(pref: Preference) -> Self {
        let dims = pref.dims();
        Self {
            pref,
            points: PointStore::new(dims),
            tags: Vec::new(),
            live: Vec::new(),
            kpoints: PointStore::new(dims),
            scratch: Vec::new(),
            mask: Vec::new(),
            stats: SkylineStats::default(),
        }
    }

    /// Offers a tuple to the window.
    ///
    /// Returns `true` when the tuple was admitted (i.e. it is in the skyline
    /// of everything offered so far), `false` when it was dominated by a
    /// current member. Admitting a tuple may evict previously admitted ones.
    pub fn offer(&mut self, p: &[f64], tag: T) -> bool {
        self.stats.tuples_scanned += 1;
        let kd = self.kpoints.dims();
        kernel::orient_into(self.pref.orders(), p, &mut self.scratch);
        if kernel::any_dominates(
            kd,
            self.kpoints.raw(),
            &self.scratch,
            &mut self.stats.dominance_tests,
        ) {
            return false;
        }
        self.mask.clear();
        self.mask.resize(self.live.len(), false);
        if kernel::dominated_mask(
            kd,
            self.kpoints.raw(),
            &self.scratch,
            &mut self.mask,
            &mut self.stats.dominance_tests,
        ) > 0
        {
            let mut w = 0;
            while w < self.live.len() {
                if self.mask[w] {
                    self.mask.swap_remove(w);
                    self.live.swap_remove(w);
                    self.kpoints.swap_remove(w);
                } else {
                    w += 1;
                }
            }
        }
        let idx = self.points.push(p);
        self.tags.push(tag);
        self.live.push(idx as u32);
        self.kpoints.push(&self.scratch);
        true
    }

    /// True iff `p` is dominated by some current window member.
    pub fn is_dominated(&mut self, p: &[f64]) -> bool {
        kernel::orient_into(self.pref.orders(), p, &mut self.scratch);
        kernel::any_dominates(
            self.kpoints.dims(),
            self.kpoints.raw(),
            &self.scratch,
            &mut self.stats.dominance_tests,
        )
    }

    /// Number of currently non-dominated entries.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no entry has been admitted (or all were evicted).
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Iterates over the current members as `(point, tag)`.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], &T)> {
        self.live
            .iter()
            .map(move |&w| (self.points.point(w as usize), &self.tags[w as usize]))
    }

    /// Clones out the current members' tags.
    pub fn tags(&self) -> Vec<T> {
        self.live
            .iter()
            .map(|&w| self.tags[w as usize].clone())
            .collect()
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> SkylineStats {
        self.stats
    }

    /// The preference the window filters under.
    pub fn preference(&self) -> &Preference {
        &self.pref
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_skyline;

    #[test]
    fn matches_oracle_on_small_input() {
        let s = PointStore::from_rows(
            2,
            [
                [4.0, 1.0],
                [1.0, 4.0],
                [2.0, 2.0],
                [3.0, 3.0],
                [2.0, 3.0],
                [5.0, 0.5],
            ],
        );
        let p = Preference::all_lowest(2);
        assert_eq!(
            bnl_skyline(&s, &p).sorted_indices(),
            naive_skyline(&s, &p).sorted_indices()
        );
    }

    #[test]
    fn empty_input() {
        let s = PointStore::new(2);
        assert!(bnl_skyline(&s, &Preference::all_lowest(2)).is_empty());
    }

    #[test]
    fn window_evicts_dominated_entries() {
        let mut w: BnlWindow<u32> = BnlWindow::new(Preference::all_lowest(2));
        assert!(w.offer(&[5.0, 5.0], 0));
        assert!(w.offer(&[1.0, 1.0], 1)); // evicts (5,5)
        assert_eq!(w.len(), 1);
        assert_eq!(w.tags(), vec![1]);
    }

    #[test]
    fn window_rejects_dominated_offer() {
        let mut w: BnlWindow<u32> = BnlWindow::new(Preference::all_lowest(2));
        assert!(w.offer(&[1.0, 1.0], 0));
        assert!(!w.offer(&[2.0, 2.0], 1));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn window_keeps_incomparable_offers() {
        let mut w: BnlWindow<u32> = BnlWindow::new(Preference::all_lowest(2));
        assert!(w.offer(&[1.0, 3.0], 0));
        assert!(w.offer(&[3.0, 1.0], 1));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn window_is_dominated_query() {
        let mut w: BnlWindow<()> = BnlWindow::new(Preference::all_lowest(2));
        w.offer(&[1.0, 1.0], ());
        assert!(w.is_dominated(&[2.0, 2.0]));
        assert!(!w.is_dominated(&[0.5, 3.0]));
    }

    #[test]
    fn window_counts_work() {
        let mut w: BnlWindow<()> = BnlWindow::new(Preference::all_lowest(2));
        w.offer(&[1.0, 3.0], ());
        w.offer(&[3.0, 1.0], ());
        let st = w.stats();
        assert_eq!(st.tuples_scanned, 2);
        assert!(st.dominance_tests >= 1);
    }
}
