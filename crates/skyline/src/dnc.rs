//! Divide & conquer skyline (after Kung, Luccio & Preparata).
//!
//! The input is split on the median of the first dimension; skylines of the
//! two halves are computed recursively; then members of the "worse" half are
//! filtered against the skyline of the "better" half (points in the better
//! half can never be dominated by points of the worse half on a
//! median-split dimension — modulo ties, which the filter handles). The
//! paper's cost model (Equation 6) uses Kung's average bound
//! `O(|S|·log^α|S|)`; this module provides the executable counterpart.

use crate::{PointStore, Preference, SkylineResult, SkylineStats};

/// Below this size the recursion bottoms out into plain BNL.
const LEAF_SIZE: usize = 32;

/// Computes the skyline by divide & conquer on the first preference
/// dimension. Output indices are in no particular order.
pub fn dnc_skyline(store: &PointStore, pref: &Preference) -> SkylineResult {
    assert_eq!(store.dims(), pref.dims(), "store/preference dims mismatch");
    let mut idx: Vec<u32> = (0..store.len() as u32).collect();
    let mut stats = SkylineStats {
        tuples_scanned: store.len() as u64,
        ..SkylineStats::default()
    };
    let survivors = solve(store, pref, &mut idx, &mut stats);
    SkylineResult {
        indices: survivors.into_iter().map(|i| i as usize).collect(),
        stats,
    }
}

fn solve(
    store: &PointStore,
    pref: &Preference,
    idx: &mut [u32],
    stats: &mut SkylineStats,
) -> Vec<u32> {
    if idx.len() <= LEAF_SIZE {
        return leaf_bnl(store, pref, idx, stats);
    }
    // Median split on oriented dimension 0: "better" values first. The split
    // must fall on a value boundary so that ties never straddle the halves —
    // otherwise a "worse"-half point tying on dim 0 could dominate a
    // "better"-half point and the one-directional merge would be wrong.
    let ord0 = pref.orders()[0];
    let key = |i: u32| ord0.orient(store.value(i as usize, 0));
    idx.sort_by(|&a, &b| key(a).total_cmp(&key(b)));
    let mid = match boundary_split(idx, key) {
        Some(mid) => mid,
        // Every point ties on dim 0; no safe split exists on this dimension.
        None => return leaf_bnl(store, pref, idx, stats),
    };
    let (lo_half, hi_half) = idx.split_at_mut(mid);
    let better = solve(store, pref, lo_half, stats);
    let worse = solve(store, pref, hi_half, stats);
    merge(store, pref, better, worse, stats)
}

/// Finds a split position nearest to the middle of the sorted slice such
/// that `key` differs across the boundary. Returns `None` when all keys are
/// equal.
fn boundary_split(idx: &[u32], key: impl Fn(u32) -> f64) -> Option<usize> {
    let n = idx.len();
    let mid = n / 2;
    // Walk outward from the midpoint looking for the closest value change.
    for off in 0..n {
        for cand in [mid.saturating_sub(off), mid + off] {
            if cand > 0 && cand < n && key(idx[cand - 1]) != key(idx[cand]) {
                return Some(cand);
            }
        }
    }
    None
}

/// Keeps all of `better`, plus the members of `worse` not dominated by any
/// member of `better`. Members of `better` cannot be dominated by `worse`
/// ones: they are strictly better on dim 0 (boundary split) and both sides
/// are internally non-dominated.
fn merge(
    store: &PointStore,
    pref: &Preference,
    better: Vec<u32>,
    worse: Vec<u32>,
    stats: &mut SkylineStats,
) -> Vec<u32> {
    let mut out = better;
    let pivot = out.len();
    'outer: for w in worse {
        let p = store.point(w as usize);
        for &b in &out[..pivot] {
            stats.dominance_tests += 1;
            if pref.dominates(store.point(b as usize), p) {
                continue 'outer;
            }
        }
        out.push(w);
    }
    out
}

fn leaf_bnl(
    store: &PointStore,
    pref: &Preference,
    idx: &[u32],
    stats: &mut SkylineStats,
) -> Vec<u32> {
    let mut window: Vec<u32> = Vec::new();
    for &i in idx {
        let p = store.point(i as usize);
        let mut dominated = false;
        let mut w = 0;
        while w < window.len() {
            stats.dominance_tests += 1;
            let q = store.point(window[w] as usize);
            if pref.dominates(q, p) {
                dominated = true;
                break;
            }
            if pref.dominates(p, q) {
                window.swap_remove(w);
            } else {
                w += 1;
            }
        }
        if !dominated {
            window.push(i);
        }
    }
    window
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_skyline;

    #[test]
    fn matches_oracle_small() {
        let s = PointStore::from_rows(
            2,
            [[4.0, 1.0], [1.0, 4.0], [2.0, 2.0], [3.0, 3.0], [2.0, 3.0]],
        );
        let p = Preference::all_lowest(2);
        assert_eq!(
            dnc_skyline(&s, &p).sorted_indices(),
            naive_skyline(&s, &p).sorted_indices()
        );
    }

    #[test]
    fn matches_oracle_above_leaf_size() {
        // Deterministic pseudo-random input big enough to force recursion.
        let mut s = PointStore::new(3);
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..300 {
            let mut row = [0.0; 3];
            for v in &mut row {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *v = ((x >> 33) % 1000) as f64;
            }
            s.push(&row);
        }
        let p = Preference::all_lowest(3);
        assert_eq!(
            dnc_skyline(&s, &p).sorted_indices(),
            naive_skyline(&s, &p).sorted_indices()
        );
    }

    #[test]
    fn ties_on_split_dimension_handled() {
        // Every point shares dim-0; dominance is decided on dim-1 only.
        let rows: Vec<[f64; 2]> = (0..100).map(|i| [5.0, (100 - i) as f64]).collect();
        let s = PointStore::from_rows(2, rows.iter());
        let p = Preference::all_lowest(2);
        let r = dnc_skyline(&s, &p);
        assert_eq!(r.len(), 1);
        assert_eq!(s.point(r.indices[0])[1], 1.0);
    }

    #[test]
    fn highest_direction() {
        let s = PointStore::from_rows(2, [[1.0, 1.0], [2.0, 2.0], [3.0, 0.5]]);
        let p = Preference::all_highest(2);
        assert_eq!(
            dnc_skyline(&s, &p).sorted_indices(),
            naive_skyline(&s, &p).sorted_indices()
        );
    }

    #[test]
    fn empty_input() {
        let s = PointStore::new(2);
        assert!(dnc_skyline(&s, &Preference::all_lowest(2)).is_empty());
    }
}
