//! Preference model and classic single-set skyline algorithms.
//!
//! This crate is the *substrate* layer of the ProgXe reproduction: it defines
//! the Pareto preference model of the paper (Section II-A) and implements the
//! classic skyline algorithms that the paper builds on or cites:
//!
//! * [`bnl`] — Block-Nested-Loops, the baseline window algorithm of
//!   Börzsönyi, Kossmann & Stocker (ICDE 2001).
//! * [`sfs`] — Sort-Filter-Skyline: presorting by a monotone score makes a
//!   single filtering pass sufficient and the output *progressive*.
//! * [`dnc`] — divide & conquer in the spirit of Kung, Luccio & Preparata
//!   (J. ACM 1975), whose `O(n log^α n)` bound the paper's cost model uses.
//! * [`salsa`] — a SaLSa-style sort-and-limit algorithm (Bartolini, Ciaccia
//!   & Patella, CIKM 2006) that can stop before scanning the whole input.
//!
//! All algorithms operate on a [`PointStore`] (a dense row-major matrix of
//! `f64` attribute values) under a [`Preference`] (per-dimension
//! lowest/highest orders combined as an equally-important Pareto preference,
//! Definition 1 of the paper). They return indices into the store plus
//! [`SkylineStats`] counting the dominance tests performed, which the
//! benchmark harness uses to validate the paper's comparison-count claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bnl;
pub mod dnc;
pub mod dominance;
pub mod kernel;
pub mod point;
pub mod preference;
pub mod reference;
pub mod salsa;
pub mod sfs;
pub mod stats;

pub use bnl::{bnl_skyline, bnl_skyline_under};
pub use dnc::dnc_skyline;
pub use dominance::{DomRelation, Dominance};
pub use point::PointStore;
pub use preference::{Order, Preference};
pub use reference::{naive_skyline, naive_skyline_under};
pub use salsa::salsa_skyline;
pub use sfs::{sfs_skyline, sfs_skyline_under};
pub use stats::{SkylineResult, SkylineStats};
