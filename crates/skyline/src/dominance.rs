//! Pairwise dominance classification.

/// Outcome of comparing two tuples under a Pareto [`crate::Preference`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomRelation {
    /// The left tuple dominates the right one.
    Dominates,
    /// The left tuple is dominated by the right one.
    DominatedBy,
    /// The tuples are identical on every preference dimension.
    Equal,
    /// Each tuple is strictly better in at least one dimension.
    Incomparable,
}

impl DomRelation {
    /// The same relation seen from the other tuple's perspective.
    #[inline]
    pub fn flip(self) -> Self {
        match self {
            DomRelation::Dominates => DomRelation::DominatedBy,
            DomRelation::DominatedBy => DomRelation::Dominates,
            other => other,
        }
    }

    /// True when neither tuple excludes the other from a skyline.
    #[inline]
    pub fn is_neutral(self) -> bool {
        matches!(self, DomRelation::Equal | DomRelation::Incomparable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_swaps_directions() {
        assert_eq!(DomRelation::Dominates.flip(), DomRelation::DominatedBy);
        assert_eq!(DomRelation::DominatedBy.flip(), DomRelation::Dominates);
        assert_eq!(DomRelation::Equal.flip(), DomRelation::Equal);
        assert_eq!(DomRelation::Incomparable.flip(), DomRelation::Incomparable);
    }

    #[test]
    fn neutral_relations() {
        assert!(DomRelation::Equal.is_neutral());
        assert!(DomRelation::Incomparable.is_neutral());
        assert!(!DomRelation::Dominates.is_neutral());
        assert!(!DomRelation::DominatedBy.is_neutral());
    }
}
