//! Pairwise dominance classification and the pluggable dominance test.

use crate::preference::Preference;

/// A pluggable tuple-level dominance test over raw attribute values.
///
/// The classic algorithms of this crate were written against the Pareto
/// [`Preference`] model (Definition 1 of the paper). Flexible-skyline
/// workloads (F-dominance over a constrained family of scoring weights —
/// arXiv:2202.09857, arXiv:2201.04899) need the *same* algorithms under a
/// different, strictly stronger dominance relation. This trait is the seam:
/// [`crate::bnl::bnl_skyline_under`], [`crate::sfs::sfs_skyline_under`], and
/// [`crate::reference::naive_skyline_under`] are generic over it, and
/// `Preference` implements it with its existing semantics, so the historical
/// entry points behave bit-for-bit as before.
///
/// Implementations must be a **strict partial order** (irreflexive,
/// transitive, antisymmetric); BNL-style window maintenance is unsound
/// otherwise.
pub trait Dominance {
    /// Number of attribute dimensions the test expects.
    fn dims(&self) -> usize;

    /// True iff `a` dominates `b`.
    fn dominates(&self, a: &[f64], b: &[f64]) -> bool;

    /// A score that is strictly monotone with respect to the relation: if
    /// `a` dominates `b` then `monotone_score(a) < monotone_score(b)`.
    /// Presorting algorithms (SFS) rely on this to guarantee that no tuple
    /// is dominated by a later one in ascending score order.
    fn monotone_score(&self, a: &[f64]) -> f64;

    /// Dimensionality of the relation's *kernel space*: a space in which
    /// this relation is exactly all-lowest Pareto dominance, so the batched
    /// kernels in [`crate::kernel`] apply. For Pareto this is `dims()`
    /// (orientation); for F-dominance it is the number of weight-polytope
    /// vertices (vertex projection).
    fn kernel_dims(&self) -> usize;

    /// Projects a raw tuple into kernel space, clearing and filling `out`
    /// (length becomes [`kernel_dims`](Self::kernel_dims)).
    ///
    /// Contract: `dominates(a, b)` must equal
    /// `kernel::dominates_scalar(project(a), project(b))` **exactly** —
    /// including on ties and NaN — so algorithms may run either path and
    /// produce identical output.
    fn project_kernel(&self, a: &[f64], out: &mut Vec<f64>);

    /// True when [`project_kernel`](Self::project_kernel) is the identity
    /// map, letting algorithms borrow the raw buffer instead of copying.
    fn kernel_is_identity(&self) -> bool {
        false
    }
}

impl Dominance for Preference {
    #[inline]
    fn dims(&self) -> usize {
        Preference::dims(self)
    }

    #[inline]
    fn dominates(&self, a: &[f64], b: &[f64]) -> bool {
        Preference::dominates(self, a, b)
    }

    #[inline]
    fn monotone_score(&self, a: &[f64]) -> f64 {
        Preference::monotone_score(self, a)
    }

    #[inline]
    fn kernel_dims(&self) -> usize {
        Preference::dims(self)
    }

    #[inline]
    fn project_kernel(&self, a: &[f64], out: &mut Vec<f64>) {
        crate::kernel::orient_into(self.orders(), a, out);
    }

    #[inline]
    fn kernel_is_identity(&self) -> bool {
        self.orders().iter().all(|o| *o == crate::Order::Lowest)
    }
}

/// Outcome of comparing two tuples under a Pareto [`crate::Preference`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomRelation {
    /// The left tuple dominates the right one.
    Dominates,
    /// The left tuple is dominated by the right one.
    DominatedBy,
    /// The tuples are identical on every preference dimension.
    Equal,
    /// Each tuple is strictly better in at least one dimension.
    Incomparable,
}

impl DomRelation {
    /// The same relation seen from the other tuple's perspective.
    #[inline]
    pub fn flip(self) -> Self {
        match self {
            DomRelation::Dominates => DomRelation::DominatedBy,
            DomRelation::DominatedBy => DomRelation::Dominates,
            other => other,
        }
    }

    /// True when neither tuple excludes the other from a skyline.
    #[inline]
    pub fn is_neutral(self) -> bool {
        matches!(self, DomRelation::Equal | DomRelation::Incomparable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_swaps_directions() {
        assert_eq!(DomRelation::Dominates.flip(), DomRelation::DominatedBy);
        assert_eq!(DomRelation::DominatedBy.flip(), DomRelation::Dominates);
        assert_eq!(DomRelation::Equal.flip(), DomRelation::Equal);
        assert_eq!(DomRelation::Incomparable.flip(), DomRelation::Incomparable);
    }

    #[test]
    fn neutral_relations() {
        assert!(DomRelation::Equal.is_neutral());
        assert!(DomRelation::Incomparable.is_neutral());
        assert!(!DomRelation::Dominates.is_neutral());
        assert!(!DomRelation::DominatedBy.is_neutral());
    }
}
