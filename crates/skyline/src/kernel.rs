//! Batched, autovectorization-friendly dominance kernels.
//!
//! Every dominance model in the engine reduces to **all-lowest Pareto
//! dominance in a kernel space**: the plain Pareto model after per-dimension
//! orientation ([`Order::orient`]), and F-dominance after projecting tuples
//! onto the weight-polytope vertices (weak F-dominance is component-wise `≤`
//! in projection space). That means one family of kernels serves every hot
//! call site — BNL/SFS windows, the worker-local pre-filter, cell-store
//! insert/eviction, and the emission filter.
//!
//! The kernels walk the flat `len × dims` buffer of a [`PointStore`]
//! row-blockwise in chunks of [`CHUNK`] rows with branch-free `|=`/bool
//! accumulators per row, so the compiler can unroll and vectorize the inner
//! dimension loop (dims are specialized for d ∈ 1..=8 via const generics; a
//! generic loop covers larger projection spaces). No SIMD intrinsics, no
//! `unsafe`, no dependencies.
//!
//! Semantics are pinned to the scalar reference [`fold_dominates`]: a row
//! `r` dominates `q` iff no coordinate of `r` compares greater and at least
//! one compares strictly less. NaN coordinates compare neither less nor
//! greater and are therefore treated as ties — exactly the behaviour of the
//! historical `partial_cmp(..).unwrap_or(Equal)` scalar path. The batched
//! kernels use the same `!(x > y) && (x < y)` formulation (not `x <= y`,
//! which would diverge on NaN), so batched and scalar results are identical
//! bit-for-bit on every input, ties and NaN included. Differential tests in
//! this module and `tests/` hold the two paths together.

use crate::dominance::Dominance;
use crate::point::PointStore;
use crate::preference::Order;

/// Row-block width of the batched kernels.
///
/// Pair counters advance in units of `CHUNK` inside full blocks because the
/// early-exit check runs once per block, not once per row.
pub const CHUNK: usize = 8;

/// Scalar reference core: folds per-dimension `(candidate, reference)` value
/// pairs into the dominance verdict of Definition 1.
///
/// Returns `true` iff no pair has `x > y` and at least one has `x < y`,
/// consuming the iterator lazily so callers keep their early exit. This is
/// **the** single scalar dominance implementation in the workspace; the
/// oriented Pareto test, the ordered raw-value test and the per-vertex
/// F-dominance tests are all thin adapters over it.
#[inline]
pub fn fold_dominates<I>(pairs: I) -> bool
where
    I: IntoIterator<Item = (f64, f64)>,
{
    let mut strict = false;
    for (x, y) in pairs {
        if x > y {
            return false;
        }
        strict |= x < y;
    }
    strict
}

/// Scalar dominance of oriented (all-lowest) points: `a` dominates `b`.
#[inline]
pub fn dominates_scalar(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    fold_dominates(a.iter().copied().zip(b.iter().copied()))
}

/// Scalar dominance of raw points under per-dimension [`Order`]s, folding
/// the orientation into the comparison instead of materializing oriented
/// copies.
#[inline]
pub fn dominates_ordered(orders: &[Order], a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), orders.len());
    debug_assert_eq!(b.len(), orders.len());
    fold_dominates(
        orders
            .iter()
            .zip(a.iter().zip(b))
            .map(|(ord, (&x, &y))| (ord.orient(x), ord.orient(y))),
    )
}

/// Orients a raw point into the all-lowest kernel space, reusing `out`.
#[inline]
pub fn orient_into(orders: &[Order], p: &[f64], out: &mut Vec<f64>) {
    debug_assert_eq!(p.len(), orders.len());
    out.clear();
    out.extend(orders.iter().zip(p).map(|(ord, &v)| ord.orient(v)));
}

/// Projects every row of `store` into `dom`'s kernel space, filling `buf`
/// row-major — or borrowing the raw buffer directly when the projection is
/// the identity, so all-lowest Pareto pays nothing.
pub fn project_store<'a, D: Dominance>(
    dom: &D,
    store: &'a PointStore,
    buf: &'a mut Vec<f64>,
) -> &'a [f64] {
    if dom.kernel_is_identity() {
        return store.raw();
    }
    let kd = dom.kernel_dims();
    buf.clear();
    buf.reserve(store.len() * kd);
    let mut tmp = Vec::with_capacity(kd);
    for p in store.iter() {
        dom.project_kernel(p, &mut tmp);
        buf.extend_from_slice(&tmp);
    }
    buf
}

/// Branch-free single-row dominance used by the specialized kernels.
#[inline(always)]
fn row_dominates(row: &[f64], q: &[f64]) -> bool {
    let mut gt = false;
    let mut lt = false;
    for d in 0..row.len() {
        gt |= row[d] > q[d];
        lt |= row[d] < q[d];
    }
    !gt && lt
}

macro_rules! dims_dispatch {
    ($dims:expr, $func:ident ( $($arg:expr),* )) => {
        match $dims {
            1 => $func::<1>($($arg),*),
            2 => $func::<2>($($arg),*),
            3 => $func::<3>($($arg),*),
            4 => $func::<4>($($arg),*),
            5 => $func::<5>($($arg),*),
            6 => $func::<6>($($arg),*),
            7 => $func::<7>($($arg),*),
            8 => $func::<8>($($arg),*),
            _ => $func::<0>($($arg),*),
        }
    };
}

#[inline(always)]
fn row_dominates_spec<const D: usize>(row: &[f64], q: &[f64]) -> bool {
    if D == 0 {
        // Generic fallback for projection spaces wider than 8.
        return row_dominates(row, q);
    }
    let mut gt = false;
    let mut lt = false;
    for d in 0..D {
        gt |= row[d] > q[d];
        lt |= row[d] < q[d];
    }
    !gt && lt
}

fn any_dominates_spec<const D: usize>(
    dims: usize,
    batch: &[f64],
    q: &[f64],
    pairs: &mut u64,
) -> bool {
    // `d` is a compile-time constant for the specialized instantiations.
    let d = if D == 0 { dims } else { D };
    let block = d * CHUNK;
    let mut chunks = batch.chunks_exact(block);
    for chunk in &mut chunks {
        let mut dom = false;
        for row in chunk.chunks_exact(d) {
            dom |= row_dominates_spec::<D>(row, q);
        }
        *pairs += CHUNK as u64;
        if dom {
            return true;
        }
    }
    for row in chunks.remainder().chunks_exact(d) {
        *pairs += 1;
        if row_dominates_spec::<D>(row, q) {
            return true;
        }
    }
    false
}

fn dominated_mask_spec<const D: usize>(
    dims: usize,
    batch: &[f64],
    q: &[f64],
    mask: &mut [bool],
    pairs: &mut u64,
) -> usize {
    let d = if D == 0 { dims } else { D };
    let mut hits = 0usize;
    for (r, row) in batch.chunks_exact(d).enumerate() {
        let dom = row_dominates_spec::<D>(q, row);
        mask[r] = dom;
        hits += dom as usize;
    }
    *pairs += (batch.len() / d) as u64;
    hits
}

/// Many-vs-one: does **any** row of `batch` (flat `len × dims`, all-lowest
/// oriented) dominate `q`?
///
/// Early-exits at [`CHUNK`]-row granularity; `pairs` advances by the number
/// of pair tests charged (whole blocks inside the chunked region). Returns
/// exactly `batch.rows().any(|r| dominates_scalar(r, q))`.
#[inline]
pub fn any_dominates(dims: usize, batch: &[f64], q: &[f64], pairs: &mut u64) -> bool {
    debug_assert!(dims > 0);
    debug_assert_eq!(batch.len() % dims, 0);
    debug_assert_eq!(q.len(), dims);
    dims_dispatch!(dims, any_dominates_spec(dims, batch, q, pairs))
}

/// One-vs-many: marks `mask[r] = true` for every row of `batch` that is
/// dominated **by** `q`, returning the number of marked rows.
///
/// `mask` must have exactly `batch.len() / dims` entries; every entry is
/// overwritten. The whole batch is evaluated branch-free (no early exit), so
/// `pairs` advances by the full row count.
#[inline]
pub fn dominated_mask(
    dims: usize,
    batch: &[f64],
    q: &[f64],
    mask: &mut [bool],
    pairs: &mut u64,
) -> usize {
    debug_assert!(dims > 0);
    debug_assert_eq!(batch.len() % dims, 0);
    debug_assert_eq!(q.len(), dims);
    assert_eq!(mask.len(), batch.len() / dims, "mask must cover the batch");
    dims_dispatch!(dims, dominated_mask_spec(dims, batch, q, mask, pairs))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random f64 stream (xorshift) for property tests.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn value(&mut self) -> f64 {
            // Coarse grid in [0, 4) so ties and equal points occur often.
            (self.next() % 16) as f64 * 0.25
        }
    }

    #[test]
    fn fold_matches_definition() {
        assert!(fold_dominates([(1.0, 2.0), (3.0, 3.0)]));
        assert!(!fold_dominates([(1.0, 1.0), (3.0, 3.0)]), "equal");
        assert!(!fold_dominates([(1.0, 2.0), (4.0, 3.0)]), "trade-off");
        assert!(fold_dominates([(0.0, 1.0)]));
        assert!(!fold_dominates(std::iter::empty()));
    }

    #[test]
    fn nan_ties_match_partial_cmp_semantics() {
        let nan = f64::NAN;
        // NaN coordinate is a tie: dominance decided by the other dims.
        assert!(dominates_scalar(&[nan, 1.0], &[nan, 2.0]));
        assert!(!dominates_scalar(&[nan, 2.0], &[nan, 1.0]));
        assert!(!dominates_scalar(&[nan, 1.0], &[2.0, 0.0]));
        // All-NaN rows never dominate (no strict dimension).
        assert!(!dominates_scalar(&[nan], &[nan]));
        assert!(!dominates_scalar(&[nan], &[1.0]));
        assert!(!dominates_scalar(&[1.0], &[nan]));
    }

    #[test]
    fn ordered_matches_oriented() {
        let orders = [Order::Lowest, Order::Highest];
        assert!(dominates_ordered(&orders, &[1.0, 9.0], &[2.0, 5.0]));
        assert!(!dominates_ordered(&orders, &[1.0, 5.0], &[2.0, 9.0]));
        assert!(!dominates_ordered(&orders, &[1.0, 5.0], &[1.0, 5.0]));
    }

    #[test]
    fn batched_matches_scalar_across_dims_and_lengths() {
        let mut rng = Rng(0x5EED_CAFE);
        for dims in 1..=10usize {
            // Lengths straddling the chunk width, including 0 and non-multiples.
            for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 64, 65] {
                let batch: Vec<f64> = (0..len * dims).map(|_| rng.value()).collect();
                let q: Vec<f64> = (0..dims).map(|_| rng.value()).collect();

                let expect_any = batch.chunks_exact(dims).any(|r| dominates_scalar(r, &q));
                let mut pairs = 0u64;
                assert_eq!(
                    any_dominates(dims, &batch, &q, &mut pairs),
                    expect_any,
                    "any_dominates dims={dims} len={len}"
                );
                if !expect_any {
                    // No early exit: every row charged.
                    assert_eq!(pairs, len as u64);
                }

                let mut mask = vec![false; len];
                let mut pairs = 0u64;
                let hits = dominated_mask(dims, &batch, &q, &mut mask, &mut pairs);
                assert_eq!(pairs, len as u64);
                let mut expect_hits = 0;
                for (r, row) in batch.chunks_exact(dims).enumerate() {
                    let expect = dominates_scalar(&q, row);
                    assert_eq!(mask[r], expect, "mask dims={dims} len={len} row={r}");
                    expect_hits += expect as usize;
                }
                assert_eq!(hits, expect_hits);
            }
        }
    }

    #[test]
    fn batched_handles_nan_like_scalar() {
        let nan = f64::NAN;
        // Rows exercising NaN in batch and query positions, len > CHUNK.
        let batch = vec![
            1.0, 1.0, //
            nan, 0.5, //
            nan, 2.0, //
            0.0, nan, //
            nan, nan, //
            0.5, 0.5, //
            2.0, 2.0, //
            0.5, nan, //
            1.0, 0.0, //
        ];
        for q in [[1.0, 1.0], [nan, 1.0], [nan, nan], [0.5, 0.75]] {
            let expect = batch.chunks_exact(2).any(|r| dominates_scalar(r, &q));
            let mut pairs = 0;
            assert_eq!(any_dominates(2, &batch, &q, &mut pairs), expect, "q={q:?}");
            let mut mask = vec![false; 9];
            dominated_mask(2, &batch, &q, &mut mask, &mut pairs);
            for (r, row) in batch.chunks_exact(2).enumerate() {
                assert_eq!(mask[r], dominates_scalar(&q, row), "q={q:?} row={r}");
            }
        }
    }

    #[test]
    fn any_dominates_charges_chunk_granular_pairs() {
        // 16 rows of 1-dim points; a dominator in the first chunk stops the
        // scan after charging exactly one chunk.
        let mut batch = vec![5.0; 16];
        batch[2] = 0.0;
        let mut pairs = 0;
        assert!(any_dominates(1, &batch, &[1.0], &mut pairs));
        assert_eq!(pairs, CHUNK as u64);
    }

    #[test]
    fn orient_into_reuses_buffer() {
        let orders = [Order::Lowest, Order::Highest];
        let mut out = vec![9.0; 7];
        orient_into(&orders, &[1.0, 2.0], &mut out);
        assert_eq!(out, vec![1.0, -2.0]);
    }
}
