//! Sort-Filter-Skyline (SFS).
//!
//! Presorting the input by a monotone score guarantees that no tuple can be
//! dominated by a tuple appearing *later* in the sorted order. A single pass
//! with an append-only window then suffices — window entries are never
//! evicted — and every admitted tuple is immediately *final*, which makes
//! SFS a progressive single-set skyline algorithm (the paper's Section VII
//! discusses this family \[4\], \[5\]).

use crate::dominance::Dominance;
use crate::{kernel, PointStore, Preference, SkylineResult, SkylineStats};

/// Computes the skyline by sorting on [`Preference::monotone_score`] and
/// filtering in one pass. Output indices are in score order (ascending),
/// i.e. in the order a progressive consumer would receive them.
pub fn sfs_skyline(store: &PointStore, pref: &Preference) -> SkylineResult {
    sfs_skyline_under(store, pref)
}

/// [`sfs_skyline`] generalized over any [`Dominance`] model. Correct for
/// any model whose [`Dominance::monotone_score`] honors the strict-monotone
/// contract — a dominated tuple always sorts after some dominator, so the
/// append-only window stays sufficient.
pub fn sfs_skyline_under<D: Dominance>(store: &PointStore, dom: &D) -> SkylineResult {
    let mut result = SkylineResult::default();
    sfs_skyline_with_under(
        store,
        dom,
        |idx| result.indices.push(idx),
        &mut result.stats,
    );
    result
}

/// Progressive SFS: invokes `emit(index)` the moment each skyline member is
/// confirmed (admission order = monotone score order).
pub fn sfs_skyline_with<F: FnMut(usize)>(
    store: &PointStore,
    pref: &Preference,
    emit: F,
    stats: &mut SkylineStats,
) {
    sfs_skyline_with_under(store, pref, emit, stats)
}

/// [`sfs_skyline_with`] generalized over any [`Dominance`] model.
pub fn sfs_skyline_with_under<D: Dominance, F: FnMut(usize)>(
    store: &PointStore,
    dom: &D,
    mut emit: F,
    stats: &mut SkylineStats,
) {
    assert_eq!(store.dims(), dom.dims(), "store/dominance dims mismatch");
    let n = store.len();
    // Score each tuple once instead of once per sort comparison.
    let scores: Vec<f64> = store.iter().map(|p| dom.monotone_score(p)).collect();
    let mut order: Vec<u32> = (0..n as u32).collect();
    // total_cmp is safe here: scores of finite inputs are finite.
    order.sort_by(|&a, &b| scores[a as usize].total_cmp(&scores[b as usize]));
    // Project once into kernel space; the append-only window then runs on
    // the batched many-vs-one kernel. SFS never evicts, so a PointStore of
    // kernel rows is all the window state needed.
    let kd = dom.kernel_dims();
    let mut kbuf = Vec::new();
    let kdata = kernel::project_store(dom, store, &mut kbuf);
    let mut window = PointStore::new(kd);
    for &i in &order {
        stats.tuples_scanned += 1;
        let p = &kdata[i as usize * kd..(i as usize + 1) * kd];
        if kernel::any_dominates(kd, window.raw(), p, &mut stats.dominance_tests) {
            continue;
        }
        window.push(p);
        emit(i as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_skyline;

    #[test]
    fn matches_oracle() {
        let s = PointStore::from_rows(
            3,
            [
                [4.0, 1.0, 2.0],
                [1.0, 4.0, 3.0],
                [2.0, 2.0, 2.0],
                [3.0, 3.0, 1.0],
                [2.0, 3.0, 4.0],
                [5.0, 0.5, 5.0],
            ],
        );
        let p = Preference::all_lowest(3);
        assert_eq!(
            sfs_skyline(&s, &p).sorted_indices(),
            naive_skyline(&s, &p).sorted_indices()
        );
    }

    #[test]
    fn emits_in_monotone_score_order() {
        let s = PointStore::from_rows(2, [[3.0, 3.0], [1.0, 1.0], [0.5, 4.0]]);
        let p = Preference::all_lowest(2);
        let r = sfs_skyline(&s, &p);
        // (1,1) has score 2, (0.5,4) has score 4.5; (3,3) is dominated.
        assert_eq!(r.indices, vec![1, 2]);
    }

    #[test]
    fn mixed_directions_match_oracle() {
        let s = PointStore::from_rows(
            2,
            [[1.0, 9.0], [2.0, 5.0], [0.5, 2.0], [3.0, 10.0], [1.5, 9.5]],
        );
        let p = Preference::new(vec![crate::Order::Lowest, crate::Order::Highest]);
        assert_eq!(
            sfs_skyline(&s, &p).sorted_indices(),
            naive_skyline(&s, &p).sorted_indices()
        );
    }

    #[test]
    fn progressive_emission_counts() {
        let s = PointStore::from_rows(2, [[1.0, 2.0], [2.0, 1.0], [3.0, 3.0]]);
        let p = Preference::all_lowest(2);
        let mut seen = Vec::new();
        let mut stats = SkylineStats::default();
        sfs_skyline_with(&s, &p, |i| seen.push(i), &mut stats);
        assert_eq!(seen.len(), 2);
        assert_eq!(stats.tuples_scanned, 3);
    }

    #[test]
    fn empty_input() {
        let s = PointStore::new(2);
        assert!(sfs_skyline(&s, &Preference::all_lowest(2)).is_empty());
    }
}
