//! The Pareto preference model of the paper (Section II-A).
//!
//! Each `d`-dimensional object is scored on `d` attributes; the user states,
//! per attribute, whether lower or higher values are preferred
//! (`PREFERRING LOWEST(tCost) AND LOWEST(delay)` in query Q1). The combined
//! Pareto preference treats all stated preferences as equally important,
//! which induces the strict partial *dominance* order of Definition 1.

use crate::dominance::DomRelation;
use std::cmp::Ordering;
use std::fmt;

/// Direction of preference for a single attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Order {
    /// Lower attribute values are better (`LOWEST(a)` in the query syntax).
    Lowest,
    /// Higher attribute values are better (`HIGHEST(a)` in the query syntax).
    Highest,
}

impl Order {
    /// Compares two attribute values under this order.
    ///
    /// Returns [`Ordering::Less`] when `a` is *better* than `b`.
    #[inline]
    pub fn cmp_values(self, a: f64, b: f64) -> Ordering {
        let ord = a.partial_cmp(&b).unwrap_or(Ordering::Equal);
        match self {
            Order::Lowest => ord,
            Order::Highest => ord.reverse(),
        }
    }

    /// Maps a value onto the canonical "lower is better" orientation.
    ///
    /// Sorting oriented values ascending puts better values first regardless
    /// of the original direction; algorithms that presort (SFS, SaLSa) use
    /// this to stay direction-agnostic.
    #[inline]
    pub fn orient(self, v: f64) -> f64 {
        match self {
            Order::Lowest => v,
            Order::Highest => -v,
        }
    }

    /// The better of the two values under this order.
    #[inline]
    pub fn better(self, a: f64, b: f64) -> f64 {
        if self.cmp_values(a, b) == Ordering::Less {
            a
        } else {
            b
        }
    }

    /// The worse of the two values under this order.
    #[inline]
    pub fn worse(self, a: f64, b: f64) -> f64 {
        if self.cmp_values(a, b) == Ordering::Greater {
            a
        } else {
            b
        }
    }
}

/// A combined Pareto preference: one [`Order`] per output dimension.
///
/// Given preference `P`, tuple `a` *dominates* tuple `b` (written `a ≺_P b`)
/// iff `a` is at least as good in every dimension and strictly better in at
/// least one (Definition 1).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Preference {
    orders: Box<[Order]>,
}

impl Preference {
    /// Builds a preference from per-dimension orders.
    ///
    /// # Panics
    /// Panics if `orders` is empty — a skyline needs at least one criterion.
    pub fn new(orders: Vec<Order>) -> Self {
        assert!(!orders.is_empty(), "preference needs at least 1 dimension");
        Self {
            orders: orders.into_boxed_slice(),
        }
    }

    /// A preference of `d` dimensions, all minimized — the setting used
    /// throughout the paper's experiments.
    pub fn all_lowest(d: usize) -> Self {
        Self::new(vec![Order::Lowest; d])
    }

    /// A preference of `d` dimensions, all maximized.
    pub fn all_highest(d: usize) -> Self {
        Self::new(vec![Order::Highest; d])
    }

    /// Number of preference dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.orders.len()
    }

    /// Per-dimension orders.
    #[inline]
    pub fn orders(&self) -> &[Order] {
        &self.orders
    }

    /// True iff `a` dominates `b` under this preference (Definition 1).
    ///
    /// Delegates to the shared scalar kernel; NaN attribute values compare
    /// as ties, matching the historical `partial_cmp(..).unwrap_or(Equal)`
    /// semantics (see [`crate::kernel`]).
    ///
    /// # Panics
    /// Debug-panics when the slices do not match the preference dimension.
    #[inline]
    pub fn dominates(&self, a: &[f64], b: &[f64]) -> bool {
        debug_assert_eq!(a.len(), self.dims());
        debug_assert_eq!(b.len(), self.dims());
        crate::kernel::dominates_ordered(&self.orders, a, b)
    }

    /// Full pairwise classification of `a` vs `b`.
    #[inline]
    pub fn compare(&self, a: &[f64], b: &[f64]) -> DomRelation {
        debug_assert_eq!(a.len(), self.dims());
        debug_assert_eq!(b.len(), self.dims());
        let mut a_better = false;
        let mut b_better = false;
        for (i, ord) in self.orders.iter().enumerate() {
            match ord.cmp_values(a[i], b[i]) {
                Ordering::Less => a_better = true,
                Ordering::Greater => b_better = true,
                Ordering::Equal => {}
            }
            if a_better && b_better {
                return DomRelation::Incomparable;
            }
        }
        match (a_better, b_better) {
            (true, false) => DomRelation::Dominates,
            (false, true) => DomRelation::DominatedBy,
            (false, false) => DomRelation::Equal,
            (true, true) => unreachable!("early return above"),
        }
    }

    /// A monotone score used by presorting algorithms: the sum of oriented
    /// values. If `a` dominates `b` then `score(a) < score(b)`, so no tuple
    /// can be dominated by a tuple that appears later in ascending order.
    #[inline]
    pub fn monotone_score(&self, a: &[f64]) -> f64 {
        self.orders
            .iter()
            .zip(a)
            .map(|(ord, &v)| ord.orient(v))
            .sum()
    }

    /// The minimum oriented coordinate — the `minC` sort key of SaLSa.
    #[inline]
    pub fn min_oriented(&self, a: &[f64]) -> f64 {
        self.orders
            .iter()
            .zip(a)
            .map(|(ord, &v)| ord.orient(v))
            .fold(f64::INFINITY, f64::min)
    }

    /// The maximum oriented coordinate — SaLSa's stop-value ingredient.
    #[inline]
    pub fn max_oriented(&self, a: &[f64]) -> f64 {
        self.orders
            .iter()
            .zip(a)
            .map(|(ord, &v)| ord.orient(v))
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

impl fmt::Debug for Preference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Preference[")?;
        for (i, o) in self.orders.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match o {
                Order::Lowest => write!(f, "LOWEST")?,
                Order::Highest => write!(f, "HIGHEST")?,
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowest_prefers_smaller() {
        assert_eq!(Order::Lowest.cmp_values(1.0, 2.0), Ordering::Less);
        assert_eq!(Order::Lowest.cmp_values(2.0, 1.0), Ordering::Greater);
        assert_eq!(Order::Lowest.cmp_values(1.0, 1.0), Ordering::Equal);
    }

    #[test]
    fn highest_prefers_larger() {
        assert_eq!(Order::Highest.cmp_values(2.0, 1.0), Ordering::Less);
        assert_eq!(Order::Highest.cmp_values(1.0, 2.0), Ordering::Greater);
    }

    #[test]
    fn orient_flips_highest() {
        assert_eq!(Order::Lowest.orient(3.0), 3.0);
        assert_eq!(Order::Highest.orient(3.0), -3.0);
    }

    #[test]
    fn better_and_worse() {
        assert_eq!(Order::Lowest.better(1.0, 2.0), 1.0);
        assert_eq!(Order::Lowest.worse(1.0, 2.0), 2.0);
        assert_eq!(Order::Highest.better(1.0, 2.0), 2.0);
        assert_eq!(Order::Highest.worse(1.0, 2.0), 1.0);
    }

    #[test]
    fn dominates_requires_strict_improvement() {
        let p = Preference::all_lowest(2);
        assert!(p.dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(p.dominates(&[1.0, 2.0], &[2.0, 2.0]));
        assert!(
            !p.dominates(&[2.0, 2.0], &[2.0, 2.0]),
            "equal never dominates"
        );
        assert!(!p.dominates(&[1.0, 3.0], &[2.0, 2.0]), "trade-off");
    }

    #[test]
    fn dominates_respects_direction() {
        let p = Preference::new(vec![Order::Lowest, Order::Highest]);
        assert!(p.dominates(&[1.0, 9.0], &[2.0, 5.0]));
        assert!(!p.dominates(&[1.0, 5.0], &[2.0, 9.0]));
    }

    #[test]
    fn compare_classifies_all_cases() {
        let p = Preference::all_lowest(2);
        assert_eq!(p.compare(&[1.0, 1.0], &[2.0, 2.0]), DomRelation::Dominates);
        assert_eq!(
            p.compare(&[2.0, 2.0], &[1.0, 1.0]),
            DomRelation::DominatedBy
        );
        assert_eq!(p.compare(&[1.0, 1.0], &[1.0, 1.0]), DomRelation::Equal);
        assert_eq!(
            p.compare(&[1.0, 2.0], &[2.0, 1.0]),
            DomRelation::Incomparable
        );
    }

    #[test]
    fn monotone_score_is_dominance_consistent() {
        let p = Preference::new(vec![Order::Lowest, Order::Highest]);
        let a = [1.0, 9.0];
        let b = [2.0, 5.0];
        assert!(p.dominates(&a, &b));
        assert!(p.monotone_score(&a) < p.monotone_score(&b));
    }

    #[test]
    fn min_max_oriented() {
        let p = Preference::all_lowest(3);
        assert_eq!(p.min_oriented(&[3.0, 1.0, 2.0]), 1.0);
        assert_eq!(p.max_oriented(&[3.0, 1.0, 2.0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "at least 1 dimension")]
    fn empty_preference_rejected() {
        let _ = Preference::new(vec![]);
    }
}
