//! SaLSa-style skyline: "computing the skyline without scanning the whole
//! sky" (Bartolini, Ciaccia & Patella, CIKM 2006 — reference \[3\] of the
//! paper).
//!
//! Points are sorted ascending by their *minimum* oriented coordinate
//! (`minC`). While scanning, the algorithm maintains a *stop value*: the
//! smallest maximum-coordinate (`maxC`) over all skyline members found so
//! far. Once the next point's `minC` exceeds the stop value, every remaining
//! point `t` satisfies `t[i] ≥ minC(t) > maxC(s) ≥ s[i]` for the stop point
//! `s` in every dimension, hence is strictly dominated — the scan stops.

use crate::{PointStore, Preference, SkylineResult, SkylineStats};

/// Computes the skyline with sorted access and early termination.
/// Output indices are in `minC` order.
pub fn salsa_skyline(store: &PointStore, pref: &Preference) -> SkylineResult {
    assert_eq!(store.dims(), pref.dims(), "store/preference dims mismatch");
    let n = store.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        pref.min_oriented(store.point(a as usize))
            .total_cmp(&pref.min_oriented(store.point(b as usize)))
    });

    let mut stats = SkylineStats::default();
    let mut window: Vec<u32> = Vec::new();
    let mut stop_value = f64::INFINITY;
    let mut consumed = 0usize;
    'outer: for (pos, &i) in order.iter().enumerate() {
        let p = store.point(i as usize);
        if pref.min_oriented(p) > stop_value {
            stats.tuples_skipped = (n - pos) as u64;
            consumed = pos;
            break;
        }
        consumed = pos + 1;
        stats.tuples_scanned += 1;
        // minC-sorted input is NOT monotone-score sorted, so later points can
        // still dominate window entries; run full BNL maintenance.
        let mut w = 0;
        while w < window.len() {
            stats.dominance_tests += 1;
            let q = store.point(window[w] as usize);
            if pref.dominates(q, p) {
                continue 'outer;
            }
            if pref.dominates(p, q) {
                window.swap_remove(w);
            } else {
                w += 1;
            }
        }
        window.push(i);
        stop_value = stop_value.min(pref.max_oriented(p));
    }
    let _ = consumed;
    SkylineResult {
        indices: window.into_iter().map(|i| i as usize).collect(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_skyline;

    #[test]
    fn matches_oracle() {
        let s = PointStore::from_rows(
            2,
            [
                [4.0, 1.0],
                [1.0, 4.0],
                [2.0, 2.0],
                [3.0, 3.0],
                [9.0, 9.0],
                [8.0, 10.0],
            ],
        );
        let p = Preference::all_lowest(2);
        assert_eq!(
            salsa_skyline(&s, &p).sorted_indices(),
            naive_skyline(&s, &p).sorted_indices()
        );
    }

    #[test]
    fn early_termination_skips_far_points() {
        // (1,1) gives stop value 1; the cluster at (9..12)^2 has minC > 1 and
        // must be skipped without any dominance test.
        let mut rows = vec![[1.0, 1.0]];
        for i in 0..50 {
            rows.push([9.0 + (i % 4) as f64, 9.0 + (i / 4) as f64]);
        }
        let s = PointStore::from_rows(2, rows.iter());
        let p = Preference::all_lowest(2);
        let r = salsa_skyline(&s, &p);
        assert_eq!(r.sorted_indices(), vec![0]);
        assert!(r.stats.tuples_skipped > 0, "should stop early");
    }

    #[test]
    fn correlated_data_terminates_very_early() {
        let rows: Vec<[f64; 2]> = (0..1000).map(|i| [i as f64, i as f64 + 0.5]).collect();
        let s = PointStore::from_rows(2, rows.iter());
        let p = Preference::all_lowest(2);
        let r = salsa_skyline(&s, &p);
        assert_eq!(r.len(), 1);
        assert!(
            r.stats.tuples_scanned < 10,
            "scanned {}",
            r.stats.tuples_scanned
        );
    }

    #[test]
    fn anti_correlated_scans_everything() {
        let rows: Vec<[f64; 2]> = (0..100).map(|i| [i as f64, (100 - i) as f64]).collect();
        let s = PointStore::from_rows(2, rows.iter());
        let p = Preference::all_lowest(2);
        let r = salsa_skyline(&s, &p);
        assert_eq!(r.len(), 100);
        assert_eq!(r.stats.tuples_skipped, 0);
    }

    #[test]
    fn mixed_directions_match_oracle() {
        let s = PointStore::from_rows(
            2,
            [[1.0, 9.0], [2.0, 5.0], [0.5, 2.0], [3.0, 10.0], [1.5, 9.5]],
        );
        let p = Preference::new(vec![crate::Order::Lowest, crate::Order::Highest]);
        assert_eq!(
            salsa_skyline(&s, &p).sorted_indices(),
            naive_skyline(&s, &p).sorted_indices()
        );
    }

    #[test]
    fn empty_input() {
        let s = PointStore::new(2);
        assert!(salsa_skyline(&s, &Preference::all_lowest(2)).is_empty());
    }
}
