//! Dense row-major storage for fixed-dimension points.
//!
//! All skyline algorithms in this workspace operate on a [`PointStore`]: a
//! flat `Vec<f64>` holding `len × dims` values. Compared with
//! `Vec<Vec<f64>>`, this avoids one pointer indirection and one heap
//! allocation per tuple, which matters when the join in a SkyMapJoin query
//! materializes millions of intermediate results.

/// A dense matrix of `f64` points, all with the same dimensionality.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PointStore {
    dims: usize,
    data: Vec<f64>,
}

impl PointStore {
    /// Creates an empty store for `dims`-dimensional points.
    ///
    /// # Panics
    /// Panics if `dims == 0`.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "points need at least one dimension");
        Self {
            dims,
            data: Vec::new(),
        }
    }

    /// Creates an empty store with capacity reserved for `cap` points.
    pub fn with_capacity(dims: usize, cap: usize) -> Self {
        assert!(dims > 0, "points need at least one dimension");
        Self {
            dims,
            data: Vec::with_capacity(cap * dims),
        }
    }

    /// Builds a store from an iterator of rows; handy in tests.
    ///
    /// # Panics
    /// Panics if any row's length differs from `dims`.
    pub fn from_rows<I, R>(dims: usize, rows: I) -> Self
    where
        I: IntoIterator<Item = R>,
        R: AsRef<[f64]>,
    {
        let mut s = Self::new(dims);
        for r in rows {
            s.push(r.as_ref());
        }
        s
    }

    /// Appends one point; returns its index.
    ///
    /// # Panics
    /// Panics if `p.len() != dims`.
    #[inline]
    pub fn push(&mut self, p: &[f64]) -> usize {
        assert_eq!(p.len(), self.dims, "point dimensionality mismatch");
        let idx = self.len();
        self.data.extend_from_slice(p);
        idx
    }

    /// Number of points stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dims
    }

    /// True when the store holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality of every stored point.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Borrow point `i` as a slice.
    ///
    /// # Panics
    /// Panics on out-of-bounds index.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        let start = i * self.dims;
        &self.data[start..start + self.dims]
    }

    /// A single attribute of a single point.
    #[inline]
    pub fn value(&self, i: usize, dim: usize) -> f64 {
        debug_assert!(dim < self.dims);
        self.data[i * self.dims + dim]
    }

    /// Iterate over all points in index order.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.dims)
    }

    /// The raw value buffer (row-major).
    #[inline]
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// Removes all points, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Removes point `i` in O(dims) by moving the last point into its slot
    /// (order is not preserved). Mirrors `Vec::swap_remove` for parallel
    /// bookkeeping structures.
    ///
    /// # Panics
    /// Panics on out-of-bounds index.
    pub fn swap_remove(&mut self, i: usize) {
        let n = self.len();
        assert!(i < n, "swap_remove index {i} out of bounds (len {n})");
        let last = n - 1;
        if i != last {
            for d in 0..self.dims {
                self.data[i * self.dims + d] = self.data[last * self.dims + d];
            }
        }
        self.data.truncate(last * self.dims);
    }

    /// Keeps only the points whose `keep` flag is set, preserving order.
    /// In-place and allocation-free: O(len × dims) forward copy.
    ///
    /// # Panics
    /// Panics if `keep.len() != self.len()`.
    pub fn compact(&mut self, keep: &[bool]) {
        assert_eq!(keep.len(), self.len(), "keep mask must cover the store");
        let dims = self.dims;
        let mut w = 0usize;
        for (i, &k) in keep.iter().enumerate() {
            if k {
                if i != w {
                    self.data.copy_within(i * dims..(i + 1) * dims, w * dims);
                }
                w += 1;
            }
        }
        self.data.truncate(w * dims);
    }

    /// Per-dimension minima and maxima over all stored points, or `None`
    /// when the store is empty. Used to size grid structures.
    pub fn bounds(&self) -> Option<(Vec<f64>, Vec<f64>)> {
        let mut lo = Vec::new();
        let mut hi = Vec::new();
        if self.bounds_into(&mut lo, &mut hi) {
            Some((lo, hi))
        } else {
            None
        }
    }

    /// Like [`bounds`](Self::bounds) but writing into caller-provided
    /// buffers, so repeated calls on the hot path do not allocate. Returns
    /// `false` (leaving the buffers empty) when the store is empty.
    pub fn bounds_into(&self, lo: &mut Vec<f64>, hi: &mut Vec<f64>) -> bool {
        lo.clear();
        hi.clear();
        if self.is_empty() {
            return false;
        }
        lo.extend_from_slice(self.point(0));
        hi.extend_from_slice(self.point(0));
        for p in self.iter().skip(1) {
            for d in 0..self.dims {
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut s = PointStore::new(3);
        assert!(s.is_empty());
        let i = s.push(&[1.0, 2.0, 3.0]);
        let j = s.push(&[4.0, 5.0, 6.0]);
        assert_eq!((i, j), (0, 1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.point(0), &[1.0, 2.0, 3.0]);
        assert_eq!(s.point(1), &[4.0, 5.0, 6.0]);
        assert_eq!(s.value(1, 2), 6.0);
    }

    #[test]
    fn from_rows_round_trips() {
        let s = PointStore::from_rows(2, [[1.0, 2.0], [3.0, 4.0]]);
        let rows: Vec<&[f64]> = s.iter().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }

    #[test]
    fn bounds_cover_all_points() {
        let s = PointStore::from_rows(2, [[1.0, 9.0], [5.0, 2.0], [3.0, 4.0]]);
        let (lo, hi) = s.bounds().unwrap();
        assert_eq!(lo, vec![1.0, 2.0]);
        assert_eq!(hi, vec![5.0, 9.0]);
    }

    #[test]
    fn bounds_empty_is_none() {
        assert!(PointStore::new(2).bounds().is_none());
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dimension_rejected() {
        let mut s = PointStore::new(2);
        s.push(&[1.0]);
    }

    #[test]
    fn swap_remove_moves_last() {
        let mut s = PointStore::from_rows(2, [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]);
        s.swap_remove(0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.point(0), &[5.0, 6.0]);
        assert_eq!(s.point(1), &[3.0, 4.0]);
        s.swap_remove(1);
        assert_eq!(s.len(), 1);
        assert_eq!(s.point(0), &[5.0, 6.0]);
        s.swap_remove(0);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn swap_remove_out_of_bounds_panics() {
        let mut s = PointStore::from_rows(2, [[1.0, 2.0]]);
        s.swap_remove(1);
    }

    #[test]
    fn compact_preserves_order() {
        let mut s = PointStore::from_rows(2, [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0], [7.0, 8.0]]);
        s.compact(&[true, false, false, true]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.point(0), &[1.0, 2.0]);
        assert_eq!(s.point(1), &[7.0, 8.0]);
        s.compact(&[false, false]);
        assert!(s.is_empty());
    }

    #[test]
    fn bounds_into_reuses_buffers() {
        let s = PointStore::from_rows(2, [[1.0, 9.0], [5.0, 2.0]]);
        let mut lo = vec![0.0; 5];
        let mut hi = Vec::new();
        assert!(s.bounds_into(&mut lo, &mut hi));
        assert_eq!(lo, vec![1.0, 2.0]);
        assert_eq!(hi, vec![5.0, 9.0]);
        assert!(!PointStore::new(2).bounds_into(&mut lo, &mut hi));
        assert!(lo.is_empty());
    }

    #[test]
    fn clear_keeps_dims() {
        let mut s = PointStore::from_rows(2, [[1.0, 2.0]]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.dims(), 2);
    }
}
