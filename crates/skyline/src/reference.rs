//! Naive O(n²) skyline — the correctness oracle for everything else.

use crate::dominance::Dominance;
use crate::{PointStore, Preference, SkylineResult, SkylineStats};

/// Computes the skyline by comparing every pair of points.
///
/// Quadratic and allocation-free beyond the result vector; used as the
/// reference implementation in unit, integration, and property tests, and as
/// the "naive approach" yardstick in the comparison-count experiments.
///
/// Duplicate points (equal on every preference dimension) are *all* kept when
/// non-dominated, matching Definition 1: equal tuples never dominate each
/// other.
pub fn naive_skyline(store: &PointStore, pref: &Preference) -> SkylineResult {
    naive_skyline_under(store, pref)
}

/// [`naive_skyline`] generalized over any [`Dominance`] model — the oracle
/// for flexible-skyline (F-dominance) tests.
pub fn naive_skyline_under<D: Dominance>(store: &PointStore, dom: &D) -> SkylineResult {
    assert_eq!(store.dims(), dom.dims(), "store/dominance dims mismatch");
    let n = store.len();
    let mut stats = SkylineStats::default();
    let mut indices = Vec::new();
    'outer: for i in 0..n {
        stats.tuples_scanned += 1;
        let p = store.point(i);
        for j in 0..n {
            if i == j {
                continue;
            }
            stats.dominance_tests += 1;
            if dom.dominates(store.point(j), p) {
                continue 'outer;
            }
        }
        indices.push(i);
    }
    SkylineResult { indices, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_2d(rows: &[[f64; 2]]) -> PointStore {
        PointStore::from_rows(2, rows.iter())
    }

    #[test]
    fn empty_input_empty_skyline() {
        let s = PointStore::new(2);
        let r = naive_skyline(&s, &Preference::all_lowest(2));
        assert!(r.is_empty());
    }

    #[test]
    fn single_point_is_skyline() {
        let s = store_2d(&[[1.0, 2.0]]);
        let r = naive_skyline(&s, &Preference::all_lowest(2));
        assert_eq!(r.sorted_indices(), vec![0]);
    }

    #[test]
    fn dominated_points_excluded() {
        // (1,1) dominates everything else except the trade-off point (0,5).
        let s = store_2d(&[[1.0, 1.0], [2.0, 2.0], [0.0, 5.0], [1.0, 3.0]]);
        let r = naive_skyline(&s, &Preference::all_lowest(2));
        assert_eq!(r.sorted_indices(), vec![0, 2]);
    }

    #[test]
    fn duplicates_all_kept() {
        let s = store_2d(&[[1.0, 1.0], [1.0, 1.0], [2.0, 0.5]]);
        let r = naive_skyline(&s, &Preference::all_lowest(2));
        assert_eq!(r.sorted_indices(), vec![0, 1, 2]);
    }

    #[test]
    fn respects_highest_direction() {
        let s = store_2d(&[[1.0, 1.0], [2.0, 2.0]]);
        let r = naive_skyline(&s, &Preference::all_highest(2));
        assert_eq!(r.sorted_indices(), vec![1]);
    }

    #[test]
    fn anti_correlated_keeps_everything() {
        let s = store_2d(&[[0.0, 4.0], [1.0, 3.0], [2.0, 2.0], [3.0, 1.0], [4.0, 0.0]]);
        let r = naive_skyline(&s, &Preference::all_lowest(2));
        assert_eq!(r.len(), 5);
    }
}
