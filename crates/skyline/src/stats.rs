//! Instrumentation shared by all skyline algorithms.

/// Counters exposed by every skyline algorithm run.
///
/// The paper's Section III-B quantifies its optimization as a reduction in
/// the number of dominance comparisons; these counters make that claim
/// measurable for our implementations as well.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SkylineStats {
    /// Number of pairwise dominance tests performed.
    pub dominance_tests: u64,
    /// Number of input tuples inspected (including dominated ones).
    pub tuples_scanned: u64,
    /// For algorithms with early termination (SaLSa), how many input tuples
    /// were *never* inspected because the stop condition fired.
    pub tuples_skipped: u64,
}

impl SkylineStats {
    /// Merges counters from a sub-computation (e.g. a divide & conquer half).
    pub fn absorb(&mut self, other: SkylineStats) {
        self.dominance_tests += other.dominance_tests;
        self.tuples_scanned += other.tuples_scanned;
        self.tuples_skipped += other.tuples_skipped;
    }
}

/// Result of a skyline computation: indices of the non-dominated points in
/// the input [`crate::PointStore`], in algorithm-specific order, plus stats.
#[derive(Debug, Clone, Default)]
pub struct SkylineResult {
    /// Indices (into the input store) of skyline members.
    pub indices: Vec<usize>,
    /// Work counters for the run.
    pub stats: SkylineStats,
}

impl SkylineResult {
    /// Indices sorted ascending — convenient for set comparisons in tests.
    pub fn sorted_indices(&self) -> Vec<usize> {
        let mut v = self.indices.clone();
        v.sort_unstable();
        v
    }

    /// Number of skyline members.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when the skyline is empty (only possible for empty input).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_counters() {
        let mut a = SkylineStats {
            dominance_tests: 3,
            tuples_scanned: 5,
            tuples_skipped: 1,
        };
        a.absorb(SkylineStats {
            dominance_tests: 2,
            tuples_scanned: 4,
            tuples_skipped: 0,
        });
        assert_eq!(a.dominance_tests, 5);
        assert_eq!(a.tuples_scanned, 9);
        assert_eq!(a.tuples_skipped, 1);
    }

    #[test]
    fn sorted_indices_sorts() {
        let r = SkylineResult {
            indices: vec![3, 1, 2],
            stats: SkylineStats::default(),
        };
        assert_eq!(r.sorted_indices(), vec![1, 2, 3]);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }
}
