//! Fixed log-bucket latency histograms — no dependencies, mergeable, and
//! cheap enough to live inside per-session stats.

use std::fmt;
use std::time::Duration;

/// Number of power-of-two buckets. 32 is the largest array length with a
/// derivable `Default`, and 2³¹ µs ≈ 35 minutes comfortably covers any
/// single-phase latency the engine produces.
const BUCKETS: usize = 32;

/// A power-of-two-bucket histogram over microsecond durations.
///
/// Bucket `i` covers `[2^i, 2^{i+1})` µs, with bucket 0 also absorbing
/// sub-microsecond samples and the top bucket clamping everything larger.
/// Recording is branch-light (`ilog2` + two adds); merging is element-wise,
/// which is how parallel runs fold worker-side observations into one view.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Histogram {
    /// An empty histogram (same as `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(us: u64) -> usize {
        if us == 0 {
            0
        } else {
            (us.ilog2() as usize).min(BUCKETS - 1)
        }
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: Duration) {
        self.record_us(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one sample in microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.buckets[Self::bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// Largest sample in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Upper bound (µs) of the bucket containing the `q`-quantile,
    /// `0.0 ≤ q ≤ 1.0`. Log-bucket resolution: the answer is within 2× of
    /// the true quantile, which is plenty for latency triage.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The top bucket clamps arbitrarily large samples, so its
                // only honest upper bound is the observed max.
                if i + 1 >= BUCKETS {
                    return self.max_us;
                }
                return (1u64 << (i + 1)).min(self.max_us.max(1));
            }
        }
        self.max_us
    }

    /// Compact JSON fragment: `{"count":N,"mean_us":…,"p50_us":…,…}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"mean_us\":{},\"p50_us\":{},\"p99_us\":{},\"max_us\":{}}}",
            self.count,
            self.mean_us(),
            self.quantile_us(0.50),
            self.quantile_us(0.99),
            self.max_us
        )
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return f.write_str("(no samples)");
        }
        write!(
            f,
            "n={} mean={}µs p50≤{}µs p99≤{}µs max={}µs",
            self.count,
            self.mean_us(),
            self.quantile_us(0.50),
            self.quantile_us(0.99),
            self.max_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean_us(), 0);
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.to_string(), "(no samples)");
    }

    #[test]
    fn buckets_and_stats() {
        let mut h = Histogram::new();
        for us in [0, 1, 2, 3, 100, 1000, 1_000_000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max_us(), 1_000_000);
        assert_eq!(h.mean_us(), (1 + 2 + 3 + 100 + 1000 + 1_000_000) / 7);
        // Median falls in the [2,4) bucket → upper bound 4.
        assert_eq!(h.quantile_us(0.5), 4);
        // p100 hits the max sample's bucket, clamped to max.
        assert_eq!(h.quantile_us(1.0), 1_000_000);
        let line = h.to_string();
        assert!(line.contains("n=7"), "{line}");
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = Histogram::new();
        a.record(Duration::from_micros(10));
        let mut b = Histogram::new();
        b.record(Duration::from_micros(5000));
        b.record(Duration::from_micros(7));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_us(), 5000);
        assert_eq!(a.mean_us(), (10 + 5000 + 7) / 3);
    }

    #[test]
    fn huge_samples_clamp_into_top_bucket() {
        let mut h = Histogram::new();
        h.record_us(u64::MAX);
        h.record(Duration::from_secs(40 * 60));
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_us(1.0), u64::MAX);
    }

    #[test]
    fn json_fragment_shape() {
        let mut h = Histogram::new();
        h.record_us(8);
        let json = h.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"count\":1"));
        assert!(json.contains("\"max_us\":8"));
    }
}
