//! One shared parser for `PROGXE_*` environment knobs.
//!
//! Every crate used to hand-roll its own `std::env::var` handling, and each
//! copy disagreed about what happens on garbage input (`PROGXE_THREADS=two`
//! warned, `PROGXE_LOG=verbose` was silently ignored). This module pins a
//! single contract:
//!
//! * **unset or empty** (after trimming) → the default, silently — an empty
//!   export is how shell scripts say "use the default";
//! * **parseable** → the parsed value;
//! * **anything else** → the default, plus one [`log::warn`] that echoes the
//!   offending value so a typo in a deploy script is visible instead of
//!   silently reverting behavior.
//!
//! Variables are read once at their call site; this module does not cache.

use crate::log;
use std::fmt::Display;

/// The raw state of an environment variable, with unset and empty kept
/// distinct from a value that needs parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvValue {
    /// The variable is not present in the environment (or not UTF-8).
    Unset,
    /// Present but empty or whitespace-only.
    Empty,
    /// Present with a non-empty value (untrimmed, for faithful echoing).
    Set(String),
}

/// Reads `name` from the process environment and classifies it.
pub fn raw(name: &str) -> EnvValue {
    match std::env::var(name) {
        Err(_) => EnvValue::Unset,
        Ok(v) if v.trim().is_empty() => EnvValue::Empty,
        Ok(v) => EnvValue::Set(v),
    }
}

/// Parses `name` with `parse`, falling back to `default` per the module
/// contract above. `parse` receives the trimmed value and returns `None` to
/// reject it; `expected` is the human description echoed in the warning
/// (e.g. `"an integer >= 1"`).
pub fn parse_or<T: Display>(
    name: &str,
    default: T,
    expected: &str,
    parse: impl FnOnce(&str) -> Option<T>,
) -> T {
    match raw(name) {
        EnvValue::Unset | EnvValue::Empty => default,
        EnvValue::Set(v) => match parse(v.trim()) {
            Some(parsed) => parsed,
            None => {
                log::warn(&format!(
                    "ignoring invalid {name}={v:?} (expected {expected}); using default ({default})"
                ));
                default
            }
        },
    }
}

/// [`parse_or`] specialized to unsigned integers with a minimum, the shape
/// of most `PROGXE_*` knobs (`PROGXE_THREADS`, `PROGXE_SERVER_MAX_SESSIONS`,
/// ...). Zero is rejected when `min` is 1, matching the long-standing
/// `PROGXE_THREADS=0` behavior.
pub fn parse_usize_at_least(name: &str, default: usize, min: usize) -> usize {
    let expected = format!("an integer >= {min}");
    parse_or(name, default, &expected, |v| {
        v.parse::<usize>().ok().filter(|&n| n >= min)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env mutation is process-global, so each test owns a uniquely named
    // variable and never touches the real PROGXE_* knobs.

    #[test]
    fn unset_is_silent_default() {
        assert_eq!(raw("PROGXE_ENV_TEST_UNSET"), EnvValue::Unset);
        let got = parse_or("PROGXE_ENV_TEST_UNSET", 7usize, "an integer", |v| {
            v.parse().ok()
        });
        assert_eq!(got, 7);
    }

    #[test]
    fn empty_and_whitespace_are_silent_default() {
        std::env::set_var("PROGXE_ENV_TEST_EMPTY", "");
        std::env::set_var("PROGXE_ENV_TEST_BLANK", "   ");
        assert_eq!(raw("PROGXE_ENV_TEST_EMPTY"), EnvValue::Empty);
        assert_eq!(raw("PROGXE_ENV_TEST_BLANK"), EnvValue::Empty);
        assert_eq!(parse_usize_at_least("PROGXE_ENV_TEST_EMPTY", 3, 1), 3);
        assert_eq!(parse_usize_at_least("PROGXE_ENV_TEST_BLANK", 3, 1), 3);
    }

    #[test]
    fn valid_values_parse_and_survive_padding() {
        std::env::set_var("PROGXE_ENV_TEST_VALID", " 12 ");
        assert_eq!(parse_usize_at_least("PROGXE_ENV_TEST_VALID", 1, 1), 12);
    }

    #[test]
    fn malformed_value_falls_back_to_default() {
        std::env::set_var("PROGXE_ENV_TEST_MALFORMED", "twelve");
        assert_eq!(parse_usize_at_least("PROGXE_ENV_TEST_MALFORMED", 4, 1), 4);
    }

    #[test]
    fn zero_is_rejected_when_min_is_one() {
        std::env::set_var("PROGXE_ENV_TEST_ZERO", "0");
        assert_eq!(parse_usize_at_least("PROGXE_ENV_TEST_ZERO", 2, 1), 2);
        // ...but accepted when the knob's floor is zero.
        assert_eq!(parse_usize_at_least("PROGXE_ENV_TEST_ZERO", 2, 0), 0);
    }

    #[test]
    fn negative_is_rejected_for_unsigned_knobs() {
        std::env::set_var("PROGXE_ENV_TEST_NEG", "-3");
        assert_eq!(parse_usize_at_least("PROGXE_ENV_TEST_NEG", 5, 1), 5);
    }
}
