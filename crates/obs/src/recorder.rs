//! Recorder implementations: the null sink and the bounded ring buffer.

use crate::event::Event;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A sink for trace events. Implementations must be cheap when disabled:
/// [`Trace`](crate::Trace) checks [`Recorder::enabled`] before constructing
/// an event, so a recorder that returns `false` costs one virtual call per
/// site and nothing else.
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// Whether events should be constructed and delivered at all.
    fn enabled(&self) -> bool;
    /// Accepts one event. Called from whichever thread hit the
    /// instrumentation site, so implementations must be thread-safe.
    fn record(&self, event: Event);
}

/// Discards everything. The default when observability is wired but not
/// wanted: the `enabled()` check short-circuits every site before any event
/// is built.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&self, _event: Event) {}
}

/// Interior of the ring: sequence assignment and the bounded buffer live
/// under one lock so `seq` order equals buffer order.
#[derive(Debug)]
struct Ring {
    next_seq: u64,
    events: VecDeque<Event>,
}

/// A bounded in-memory ring of events.
///
/// Concurrency discipline matches `runtime::pool`: hot-path totals are
/// lock-free atomics ([`RingRecorder::recorded`]/[`RingRecorder::dropped`]),
/// while the buffer itself sits behind one short-critical-section `Mutex`
/// whose only long operation is the consumer-side [`RingRecorder::drain`].
/// When the ring is full the *oldest* event is dropped — a live timeline
/// cares about the recent past, and `dropped()` reports the loss honestly.
#[derive(Debug)]
pub struct RingRecorder {
    capacity: usize,
    recorded: AtomicU64,
    dropped: AtomicU64,
    buf: Mutex<Ring>,
}

impl RingRecorder {
    /// Default capacity: 64Ki events (a few MiB), enough for a full trace
    /// of the bench workloads without overflow.
    pub const DEFAULT_CAPACITY: usize = 64 * 1024;

    /// Ring with [`RingRecorder::DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Ring holding at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingRecorder {
            capacity,
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            buf: Mutex::new(Ring {
                next_seq: 0,
                events: VecDeque::with_capacity(capacity.min(1024)),
            }),
        }
    }

    /// Removes and returns every buffered event, oldest first. Sequence
    /// numbers keep increasing across drains, so a consumer can stitch
    /// successive drains into one stream (and spot overflow gaps).
    pub fn drain(&self) -> Vec<Event> {
        let mut ring = self.buf.lock().expect("obs ring poisoned");
        ring.events.drain(..).collect()
    }

    /// Buffered events right now.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("obs ring poisoned").events.len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever accepted (including ones later dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Events evicted by overflow since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Default for RingRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder for RingRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, mut event: Event) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.buf.lock().expect("obs ring poisoned");
        event.seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.events.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Point};
    use std::time::Duration;

    fn stall(at_ms: u64) -> Event {
        Event {
            at: Duration::from_millis(at_ms),
            seq: 0,
            kind: EventKind::Point(Point::Stall),
        }
    }

    #[test]
    fn ring_assigns_contiguous_seq_and_drains_in_order() {
        let ring = RingRecorder::with_capacity(8);
        assert!(ring.enabled());
        for i in 0..5 {
            ring.record(stall(i));
        }
        assert_eq!(ring.len(), 5);
        let events = ring.drain();
        assert!(ring.is_empty());
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        // Seq keeps increasing across drains.
        ring.record(stall(9));
        assert_eq!(ring.drain()[0].seq, 5);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let ring = RingRecorder::with_capacity(3);
        for i in 0..5 {
            ring.record(stall(i));
        }
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.dropped(), 2);
        let events = ring.drain();
        assert_eq!(events.len(), 3);
        // The oldest two (seq 0, 1) were evicted.
        assert_eq!(events[0].seq, 2);
        assert_eq!(events[2].seq, 4);
    }

    #[test]
    fn null_recorder_is_disabled() {
        let null = NullRecorder;
        assert!(!null.enabled());
        null.record(stall(0)); // no-op, must not panic
    }

    #[test]
    fn ring_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<RingRecorder>();
        check::<NullRecorder>();
    }
}
