//! The structured event model: spans, points, and the envelope around them.

use std::fmt;
use std::time::Duration;

/// Identifier of one span within one [`Trace`](crate::Trace). Allocated
/// from a per-trace atomic counter, so ids are unique per session and a
/// begin/end pair can be matched even when events from concurrent workers
/// interleave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Which input source an ingest event refers to. Mirrors the core crate's
/// `SourceId` without depending on it (this crate sits below core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// The R (left) source.
    R,
    /// The T (right) source.
    T,
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Source::R => "R",
            Source::T => "T",
        })
    }
}

/// The engine-wide span taxonomy: phases with duration. Every variant
/// corresponds to one instrumented site in the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Span {
    /// Output-space look-ahead: grid build, region generation,
    /// abstraction-level pruning, cell tracking.
    Lookahead,
    /// One schedule pop: choosing (and re-checking) the next region.
    RegionPop,
    /// Tuple-level processing of one region: join + map + dominance.
    TuplePhase {
        /// The region's index in the schedule order.
        region_id: u64,
        /// Upper bound on join pairs for the region (`n_R · n_T`).
        pairs: u64,
    },
    /// Ordered commit of one region's batch into the cell store.
    Commit {
        /// The region's index in the schedule order.
        region_id: u64,
    },
    /// One accepted ingest batch (validation + grid placement + unlock).
    IngestBatch {
        /// Which source pushed the batch.
        source: Source,
        /// Rows in the batch.
        rows: u64,
    },
}

impl Span {
    /// Short lowercase name, stable across releases (used in reports).
    pub fn name(&self) -> &'static str {
        match self {
            Span::Lookahead => "lookahead",
            Span::RegionPop => "region_pop",
            Span::TuplePhase { .. } => "tuple_phase",
            Span::Commit { .. } => "commit",
            Span::IngestBatch { .. } => "ingest_batch",
        }
    }
}

/// Instantaneous events: things that happen at a moment, not over one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Point {
    /// An output cell's tuples were emitted as a proven-final batch.
    Emit {
        /// Output-grid cell index.
        cell: u64,
        /// Tuples emitted from the cell.
        n: u64,
        /// Whether the batch is guaranteed final (always true for ProgXe;
        /// recorded so baseline engines can share the taxonomy).
        proven_final: bool,
    },
    /// A streaming input cell was sealed by a watermark or source close.
    Seal {
        /// Which source's grid the cell belongs to.
        source: Source,
        /// Input-grid cell index.
        cell: u64,
    },
    /// The driver found no ready region and must wait for input.
    Stall,
    /// Cancellation was observed by the driver.
    Cancel,
}

impl Point {
    /// Short lowercase name, stable across releases (used in reports).
    pub fn name(&self) -> &'static str {
        match self {
            Point::Emit { .. } => "emit",
            Point::Seal { .. } => "seal",
            Point::Stall => "stall",
            Point::Cancel => "cancel",
        }
    }
}

/// What one [`Event`] carries.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opened.
    SpanBegin {
        /// Id matching the eventual [`EventKind::SpanEnd`].
        id: SpanId,
        /// Which phase opened.
        span: Span,
    },
    /// A span closed.
    SpanEnd {
        /// Id of the matching [`EventKind::SpanBegin`].
        id: SpanId,
    },
    /// An instantaneous event.
    Point(Point),
    /// A named counter increment.
    Counter {
        /// Counter name (static, dot-separated).
        name: &'static str,
        /// Amount added.
        delta: u64,
    },
    /// A named gauge sample.
    Gauge {
        /// Gauge name (static, dot-separated).
        name: &'static str,
        /// Sampled value.
        value: f64,
    },
}

/// One timestamped record in a trace stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic offset from the trace epoch (the session's start instant),
    /// so event times line up with `ResultEvent::elapsed`.
    pub at: Duration,
    /// Position in the recorder's stream (assigned by the recorder, gap-free
    /// even when ring overflow drops old events).
    pub seq: u64,
    /// The payload.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(Span::Lookahead.name(), "lookahead");
        assert_eq!(
            Span::TuplePhase {
                region_id: 0,
                pairs: 0
            }
            .name(),
            "tuple_phase"
        );
        assert_eq!(Span::Commit { region_id: 1 }.name(), "commit");
        assert_eq!(
            Span::IngestBatch {
                source: Source::R,
                rows: 3
            }
            .name(),
            "ingest_batch"
        );
        assert_eq!(
            Point::Emit {
                cell: 0,
                n: 1,
                proven_final: true
            }
            .name(),
            "emit"
        );
        assert_eq!(
            Point::Seal {
                source: Source::T,
                cell: 9
            }
            .name(),
            "seal"
        );
        assert_eq!(Point::Stall.name(), "stall");
        assert_eq!(Point::Cancel.name(), "cancel");
        assert_eq!(SpanId(7).to_string(), "#7");
        assert_eq!(Source::R.to_string(), "R");
        assert_eq!(Source::T.to_string(), "T");
    }
}
