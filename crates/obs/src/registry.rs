//! Process-wide named counters and histograms.
//!
//! Unlike a [`Trace`](crate::Trace) — which is per-session and opt-in —
//! the registry aggregates cross-session runtime health (worker queue-wait
//! vs run time, jobs executed) that has no single session to belong to.
//! Observation is a short `Mutex` critical section per sample; reading is
//! a [`snapshot`](MetricsRegistry::snapshot) into a [`Report`].

use crate::hist::Histogram;
use crate::report::{Report, Value};
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
}

/// A named metrics store. Use [`MetricsRegistry::global`] for the
/// process-wide instance; tests construct their own with
/// [`MetricsRegistry::new`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty, private registry (for tests and scoped measurements).
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Adds `delta` to the named counter (creating it at zero).
    pub fn incr(&self, name: &'static str, delta: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        *inner.counters.entry(name).or_insert(0) += delta;
    }

    /// Records one duration into the named histogram (creating it empty).
    pub fn observe(&self, name: &'static str, sample: Duration) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.hists.entry(name).or_default().record(sample);
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner.counters.get(name).copied().unwrap_or(0)
    }

    /// A copy of the named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner.hists.get(name).cloned()
    }

    /// Snapshot of every metric as a [`Report`] (counters first, then
    /// histograms, each alphabetically). Use `report.to_json()` for the
    /// machine encoding or `Display` for the human one.
    pub fn snapshot(&self) -> Report {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut report = Report::new("metrics");
        for (&name, &v) in &inner.counters {
            report.push(name, Value::U64(v));
        }
        for (&name, h) in &inner.hists {
            report.push(name, Value::hist(h.clone()));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let reg = MetricsRegistry::new();
        reg.incr("pool.jobs", 2);
        reg.incr("pool.jobs", 3);
        reg.observe("pool.run", Duration::from_micros(50));
        assert_eq!(reg.counter("pool.jobs"), 5);
        assert_eq!(reg.counter("missing"), 0);
        assert_eq!(reg.histogram("pool.run").unwrap().count(), 1);
        assert!(reg.histogram("missing").is_none());
        let snap = reg.snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"pool.jobs\": 5"), "{json}");
        assert!(json.contains("\"pool.run\": {\"count\":1"), "{json}");
        let text = snap.to_string();
        assert!(text.contains("pool.jobs: 5"), "{text}");
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = MetricsRegistry::global() as *const _;
        let b = MetricsRegistry::global() as *const _;
        assert_eq!(a, b);
    }
}
