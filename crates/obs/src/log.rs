//! A tiny leveled stderr logger, filtered by the `PROGXE_LOG` environment
//! variable (`off`, `error`, `warn`, `info`, `debug`; default `warn`).
//!
//! This replaces the engine's ad-hoc `eprintln!` diagnostics with one
//! shared filter: set `PROGXE_LOG=off` to silence everything,
//! `PROGXE_LOG=debug` to hear it all. The variable is read once per
//! process (first log call) — changing it afterwards has no effect.

use std::sync::OnceLock;

/// Verbosity levels, in increasing order of chattiness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Nothing is printed.
    Off,
    /// Unrecoverable or data-affecting problems.
    Error,
    /// Suspicious-but-survivable conditions (the default threshold).
    Warn,
    /// Lifecycle notes.
    Info,
    /// Everything.
    Debug,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Parses a `PROGXE_LOG` value. Case-insensitive; numeric aliases 0–4 are
/// accepted. `None` for anything unrecognized (caller falls back to the
/// default).
pub fn parse_level(s: &str) -> Option<Level> {
    match s.trim().to_ascii_lowercase().as_str() {
        "off" | "none" | "0" => Some(Level::Off),
        "error" | "1" => Some(Level::Error),
        "warn" | "warning" | "2" => Some(Level::Warn),
        "info" | "3" => Some(Level::Info),
        "debug" | "trace" | "4" => Some(Level::Debug),
        _ => None,
    }
}

/// The active threshold: `PROGXE_LOG` parsed once, defaulting to
/// [`Level::Warn`] when unset or unrecognized. An unrecognized value is
/// reported once through [`warn`] with the value echoed, per the
/// [`crate::env`] contract.
pub fn max_level() -> Level {
    static LEVEL: OnceLock<Level> = OnceLock::new();
    static WARN_ONCE: std::sync::Once = std::sync::Once::new();
    if let Some(level) = LEVEL.get() {
        return *level;
    }
    // Resolve the value *before* installing it: the warning below logs
    // through this module, so the threshold must already be set when it
    // fires (a `get_or_init` closure that called `warn` would re-enter
    // the OnceLock and deadlock).
    let (resolved, invalid) = match crate::env::raw("PROGXE_LOG") {
        crate::env::EnvValue::Set(v) => match parse_level(&v) {
            Some(level) => (level, None),
            None => (Level::Warn, Some(v)),
        },
        _ => (Level::Warn, None),
    };
    let level = *LEVEL.get_or_init(|| resolved);
    if let Some(v) = invalid {
        WARN_ONCE.call_once(|| {
            warn(&format!(
                "ignoring invalid PROGXE_LOG={v:?} (expected off|error|warn|info|debug or 0-4); \
                 using default (warn)"
            ));
        });
    }
    level
}

/// Whether a message at `level` would be printed.
pub fn enabled(level: Level) -> bool {
    level != Level::Off && level <= max_level()
}

fn log(level: Level, msg: &str) {
    if enabled(level) {
        eprintln!("progxe[{}] {msg}", level.tag());
    }
}

/// Logs at [`Level::Error`].
pub fn error(msg: &str) {
    log(Level::Error, msg);
}

/// Logs at [`Level::Warn`].
pub fn warn(msg: &str) {
    log(Level::Warn, msg);
}

/// Logs at [`Level::Info`].
pub fn info(msg: &str) {
    log(Level::Info, msg);
}

/// Logs at [`Level::Debug`].
pub fn debug(msg: &str) {
    log(Level::Debug, msg);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order() {
        assert!(Level::Off < Level::Error);
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn parse_accepts_names_and_numbers() {
        assert_eq!(parse_level("off"), Some(Level::Off));
        assert_eq!(parse_level("NONE"), Some(Level::Off));
        assert_eq!(parse_level(" Error "), Some(Level::Error));
        assert_eq!(parse_level("warning"), Some(Level::Warn));
        assert_eq!(parse_level("info"), Some(Level::Info));
        assert_eq!(parse_level("trace"), Some(Level::Debug));
        assert_eq!(parse_level("3"), Some(Level::Info));
        assert_eq!(parse_level("verbose"), None);
        assert_eq!(parse_level(""), None);
    }

    #[test]
    fn logging_at_any_level_does_not_panic() {
        // The OnceLock threshold is process-wide, so this only smoke-tests
        // the call path; filtering is covered via `parse_level` + ordering.
        error("test error message");
        warn("test warn message");
        info("test info message");
        debug("test debug message");
        let _ = enabled(Level::Error);
        assert!(!enabled(Level::Off), "Off is never printable");
    }
}
