//! The shared report shape: an insertion-ordered list of named values with
//! one JSON encoding and one human `Display`. Both the process-wide
//! registry snapshot and the core crate's `ExecStats` view render through
//! this type, so every exported surface agrees on formatting.

use crate::hist::Histogram;
use std::fmt;
use std::time::Duration;

/// One reportable value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An integer counter.
    U64(u64),
    /// A floating-point measure (rates, estimates).
    F64(f64),
    /// A boolean flag.
    Bool(bool),
    /// Free text (engine names, modes).
    Text(String),
    /// A duration, exported as fractional milliseconds.
    DurationMs(Duration),
    /// A latency histogram (exported as its summary object). Boxed: the
    /// bucket array would otherwise dominate every `Value`'s size.
    Hist(Box<Histogram>),
}

impl Value {
    /// Convenience constructor boxing a histogram.
    pub fn hist(h: Histogram) -> Self {
        Value::Hist(Box::new(h))
    }
}

/// A titled, ordered collection of named values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Report heading (`Display` prints it; JSON ignores it).
    pub title: String,
    fields: Vec<(String, Value)>,
}

/// Minimal JSON string escaper — enough for the static names and engine
/// labels this crate emits (control characters, quotes, backslashes).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Report {
    /// An empty report with the given title.
    pub fn new(title: impl Into<String>) -> Self {
        Report {
            title: title.into(),
            fields: Vec::new(),
        }
    }

    /// Appends a field, preserving insertion order.
    pub fn push(&mut self, name: impl Into<String>, value: Value) -> &mut Self {
        self.fields.push((name.into(), value));
        self
    }

    /// The fields in insertion order.
    pub fn fields(&self) -> &[(String, Value)] {
        &self.fields
    }

    /// Looks up a field by name (first match).
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Encodes the fields as one flat JSON object.
    pub fn to_json(&self) -> String {
        let mut parts = Vec::with_capacity(self.fields.len());
        for (name, value) in &self.fields {
            let v = match value {
                Value::U64(n) => n.to_string(),
                Value::F64(x) => {
                    if x.is_finite() {
                        format!("{x}")
                    } else {
                        "null".to_string()
                    }
                }
                Value::Bool(b) => b.to_string(),
                Value::Text(s) => format!("\"{}\"", escape(s)),
                Value::DurationMs(d) => format!("{:.3}", d.as_secs_f64() * 1e3),
                Value::Hist(h) => h.to_json(),
            };
            parts.push(format!("\"{}\": {v}", escape(name)));
        }
        format!("{{{}}}", parts.join(", "))
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.title.is_empty() {
            writeln!(f, "{}", self.title)?;
        }
        for (name, value) in &self.fields {
            match value {
                Value::U64(n) => writeln!(f, "  {name}: {n}")?,
                Value::F64(x) => writeln!(f, "  {name}: {x:.4}")?,
                Value::Bool(b) => writeln!(f, "  {name}: {b}")?,
                Value::Text(s) => writeln!(f, "  {name}: {s}")?,
                Value::DurationMs(d) => writeln!(f, "  {name}: {d:.1?}")?,
                Value::Hist(h) => writeln!(f, "  {name}: {h}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_and_display_agree_on_fields() {
        let mut hist = Histogram::new();
        hist.record_us(100);
        let mut report = Report::new("test report");
        report
            .push("runs", Value::U64(3))
            .push("rate", Value::F64(0.5))
            .push("cancelled", Value::Bool(false))
            .push("engine", Value::Text("progxe".into()))
            .push("wall", Value::DurationMs(Duration::from_millis(1500)))
            .push("latency", Value::hist(hist));
        let json = report.to_json();
        assert!(json.contains("\"runs\": 3"), "{json}");
        assert!(json.contains("\"rate\": 0.5"), "{json}");
        assert!(json.contains("\"cancelled\": false"), "{json}");
        assert!(json.contains("\"engine\": \"progxe\""), "{json}");
        assert!(json.contains("\"wall\": 1500.000"), "{json}");
        assert!(json.contains("\"latency\": {\"count\":1"), "{json}");
        let text = report.to_string();
        assert!(text.starts_with("test report\n"));
        assert!(text.contains("  engine: progxe"));
        assert_eq!(report.get("runs"), Some(&Value::U64(3)));
        assert_eq!(report.get("missing"), None);
    }

    #[test]
    fn json_escapes_strings() {
        let mut report = Report::new("");
        report.push("s", Value::Text("a\"b\\c\nd".into()));
        assert_eq!(report.to_json(), "{\"s\": \"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn non_finite_floats_export_as_null() {
        let mut report = Report::new("");
        report.push("x", Value::F64(f64::NAN));
        assert_eq!(report.to_json(), "{\"x\": null}");
    }
}
