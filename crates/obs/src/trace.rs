//! The per-session trace handle and its RAII span guard.

use crate::event::{Event, EventKind, Point, Span, SpanId};
use crate::recorder::Recorder;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct TraceInner {
    recorder: Arc<dyn Recorder>,
    /// All event timestamps are offsets from this instant — the session's
    /// start — so trace times line up with `ResultEvent::elapsed`.
    epoch: Instant,
    next_span: AtomicU64,
}

/// The handle the engine threads through its phases. Cloning is cheap
/// (one `Arc`); clones share the epoch and span-id counter, so spans opened
/// on pool workers interleave correctly with the committer's events.
///
/// Three cost tiers, checked in order at every site:
///
/// 1. **off** — [`Trace::disabled`] holds no recorder at all; each site is
///    one `Option` branch.
/// 2. **null** — a recorder whose `enabled()` returns `false`; one virtual
///    call per site, no event construction, no clock read.
/// 3. **on** — events are timestamped and delivered.
#[derive(Debug, Clone)]
pub struct Trace {
    inner: Option<Arc<TraceInner>>,
}

impl Trace {
    /// A trace that records nothing and reads no clocks.
    pub fn disabled() -> Self {
        Trace { inner: None }
    }

    /// A trace whose epoch is "now".
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        Self::new_at(recorder, Instant::now())
    }

    /// A trace with an explicit epoch — pass the session's start instant so
    /// event times match the session's own elapsed clock.
    pub fn new_at(recorder: Arc<dyn Recorder>, epoch: Instant) -> Self {
        Trace {
            inner: Some(Arc::new(TraceInner {
                recorder,
                epoch,
                next_span: AtomicU64::new(0),
            })),
        }
    }

    /// Builds from an optional recorder: `None` means [`Trace::disabled`].
    pub fn from_recorder(recorder: Option<Arc<dyn Recorder>>, epoch: Instant) -> Self {
        match recorder {
            Some(r) => Self::new_at(r, epoch),
            None => Self::disabled(),
        }
    }

    /// Whether events would actually be delivered (off and null tiers both
    /// answer `false`). Use to skip *computing* expensive attributes; the
    /// record methods already self-gate.
    pub fn is_enabled(&self) -> bool {
        match &self.inner {
            Some(inner) => inner.recorder.enabled(),
            None => false,
        }
    }

    /// Time since the trace epoch; `Duration::ZERO` when disabled (avoid
    /// using the value for anything but event alignment).
    pub fn elapsed(&self) -> Duration {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed(),
            None => Duration::ZERO,
        }
    }

    fn emit(&self, kind: EventKind) {
        if let Some(inner) = &self.inner {
            if inner.recorder.enabled() {
                inner.recorder.record(Event {
                    at: inner.epoch.elapsed(),
                    seq: 0, // assigned by the recorder
                    kind,
                });
            }
        }
    }

    /// Opens a span; the returned guard emits the matching end event when
    /// dropped (including on unwind), or explicitly via
    /// [`SpanGuard::end`].
    #[must_use = "dropping the guard immediately closes the span"]
    pub fn span(&self, span: Span) -> SpanGuard {
        let id = match &self.inner {
            Some(inner) if inner.recorder.enabled() => {
                let id = SpanId(inner.next_span.fetch_add(1, Ordering::Relaxed));
                inner.recorder.record(Event {
                    at: inner.epoch.elapsed(),
                    seq: 0,
                    kind: EventKind::SpanBegin { id, span },
                });
                Some(id)
            }
            _ => None,
        };
        SpanGuard {
            trace: self.clone(),
            id,
        }
    }

    /// Records an instantaneous event.
    pub fn point(&self, point: Point) {
        self.emit(EventKind::Point(point));
    }

    /// Adds `delta` to the named counter stream.
    pub fn counter(&self, name: &'static str, delta: u64) {
        self.emit(EventKind::Counter { name, delta });
    }

    /// Samples the named gauge.
    pub fn gauge(&self, name: &'static str, value: f64) {
        self.emit(EventKind::Gauge { name, value });
    }
}

impl Default for Trace {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Closes its span on drop. Hold it across the phase; unwinds (worker
/// panics) still close the span, which is what keeps trace streams
/// well-formed under `catch_unwind` in the pool.
#[derive(Debug)]
pub struct SpanGuard {
    trace: Trace,
    /// `None` when the trace was disabled at open time (nothing to close).
    id: Option<SpanId>,
}

impl SpanGuard {
    /// Ends the span now (equivalent to dropping the guard).
    pub fn end(self) {}

    /// The span's id, if the trace was enabled when it opened.
    pub fn id(&self) -> Option<SpanId> {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(id) = self.id.take() {
            self.trace.emit(EventKind::SpanEnd { id });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Source;
    use crate::recorder::{NullRecorder, RingRecorder};

    #[test]
    fn disabled_trace_is_inert() {
        let trace = Trace::disabled();
        assert!(!trace.is_enabled());
        assert_eq!(trace.elapsed(), Duration::ZERO);
        let guard = trace.span(Span::Lookahead);
        assert_eq!(guard.id(), None);
        drop(guard);
        trace.point(Point::Stall);
        trace.counter("x", 1);
        trace.gauge("y", 0.5);
    }

    #[test]
    fn null_recorder_never_builds_events() {
        let trace = Trace::new(Arc::new(NullRecorder));
        assert!(!trace.is_enabled());
        let guard = trace.span(Span::RegionPop);
        assert_eq!(guard.id(), None, "null tier must not allocate span ids");
    }

    #[test]
    fn spans_nest_and_close_in_drop_order() {
        let ring = Arc::new(RingRecorder::new());
        let trace = Trace::new(ring.clone());
        assert!(trace.is_enabled());
        let outer = trace.span(Span::Lookahead);
        {
            let _inner = trace.span(Span::Commit { region_id: 4 });
            trace.point(Point::Seal {
                source: Source::R,
                cell: 2,
            });
        }
        outer.end();
        let events = ring.drain();
        assert_eq!(events.len(), 5);
        let EventKind::SpanBegin { id: outer_id, span } = events[0].kind else {
            panic!("expected outer begin, got {:?}", events[0].kind);
        };
        assert_eq!(span, Span::Lookahead);
        let EventKind::SpanBegin { id: inner_id, .. } = events[1].kind else {
            panic!("expected inner begin");
        };
        assert_ne!(outer_id, inner_id);
        assert!(matches!(
            events[2].kind,
            EventKind::Point(Point::Seal { .. })
        ));
        assert_eq!(events[3].kind, EventKind::SpanEnd { id: inner_id });
        assert_eq!(events[4].kind, EventKind::SpanEnd { id: outer_id });
        // Timestamps are monotone non-decreasing within one thread.
        for pair in events.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }

    #[test]
    fn clones_share_the_span_counter() {
        let ring = Arc::new(RingRecorder::new());
        let trace = Trace::new(ring.clone());
        let clone = trace.clone();
        let a = trace.span(Span::RegionPop);
        let b = clone.span(Span::RegionPop);
        assert_ne!(a.id(), b.id(), "ids must be unique across clones");
        drop((a, b));
        assert_eq!(ring.drain().len(), 4);
    }

    #[test]
    fn epoch_alignment() {
        let ring = Arc::new(RingRecorder::new());
        let epoch = Instant::now();
        let trace = Trace::new_at(ring.clone(), epoch);
        trace.point(Point::Cancel);
        let events = ring.drain();
        assert!(events[0].at <= epoch.elapsed());
    }

    #[test]
    fn counters_and_gauges_round_trip() {
        let ring = Arc::new(RingRecorder::new());
        let trace = Trace::new(ring.clone());
        trace.counter("results_emitted", 3);
        trace.gauge("progress_estimate", 0.25);
        let events = ring.drain();
        assert_eq!(
            events[0].kind,
            EventKind::Counter {
                name: "results_emitted",
                delta: 3
            }
        );
        assert_eq!(
            events[1].kind,
            EventKind::Gauge {
                name: "progress_estimate",
                value: 0.25
            }
        );
    }
}
