//! # progxe-obs — tracing and metrics for the ProgXe engine
//!
//! A std-only, zero-dependency observability layer. The engine's core claim
//! is *progressive* delivery, so the unit of observation is the timeline of
//! a single session: when did look-ahead end, when did each region run, when
//! did each output cell prove final. This crate supplies:
//!
//! * [`Recorder`] — the sink trait. [`NullRecorder`] discards everything at
//!   near-zero cost; [`RingRecorder`] keeps a bounded in-memory ring of
//!   [`Event`]s (atomic counters + one `Mutex` drain path, the same
//!   discipline as the runtime's thread pool).
//! * [`Trace`] — the per-session handle the engine threads through its
//!   phases. It timestamps events against one monotonic epoch (the
//!   session's start instant) and hands out RAII [`SpanGuard`]s so spans
//!   close even on early return or unwind.
//! * [`Span`]/[`Point`] — the engine-wide taxonomy: `lookahead`,
//!   `region_pop`, `tuple_phase`, `commit`, `ingest_batch` spans;
//!   `emit`, `seal`, `stall`, `cancel` points.
//! * [`Histogram`] — fixed log-bucket latency histograms (no deps), used
//!   per session for region/commit latency and batch inter-arrival.
//! * [`MetricsRegistry`] — a process-wide named counter/histogram store
//!   (queue-wait vs run time from the worker pool lands here), exportable
//!   as JSON or a human [`Report`].
//! * [`log`] — a tiny leveled stderr logger gated by `PROGXE_LOG`, so the
//!   engine's diagnostics share one filter instead of ad-hoc `eprintln!`.
//! * [`env`](mod@env) — the one sanctioned parser for `PROGXE_*`
//!   environment knobs:
//!   unset/empty fall back silently, malformed values fall back with a
//!   warning that echoes the offending value.
//!
//! ## Wiring
//!
//! ```
//! use progxe_obs::{Event, EventKind, Point, RingRecorder, Span, Trace};
//! use std::sync::Arc;
//!
//! let ring = Arc::new(RingRecorder::new());
//! let trace = Trace::new(ring.clone());
//! {
//!     let _span = trace.span(Span::Lookahead);
//!     trace.point(Point::Emit { cell: 3, n: 2, proven_final: true });
//! } // span closes here
//! let events = ring.drain();
//! assert_eq!(events.len(), 3); // begin, point, end
//! assert!(matches!(events[0].kind, EventKind::SpanBegin { .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod env;
mod event;
mod hist;
pub mod log;
mod recorder;
mod registry;
mod report;
mod trace;

pub use event::{Event, EventKind, Point, Source, Span, SpanId};
pub use hist::Histogram;
pub use recorder::{NullRecorder, Recorder, RingRecorder};
pub use registry::MetricsRegistry;
pub use report::{Report, Value};
pub use trace::{SpanGuard, Trace};
