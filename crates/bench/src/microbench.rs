//! A minimal timing harness for the `benches/` targets.
//!
//! The workspace builds without crates.io access, so the usual statistical
//! harness is replaced by this deliberately small one: per benchmark it
//! warms up, picks an iteration count targeting a fixed measurement budget,
//! takes several samples, and reports the median ns/op. Bench targets set
//! `harness = false` and drive it from a plain `main`.

use std::time::{Duration, Instant};

/// Measurement budget per benchmark (split across samples).
const BUDGET: Duration = Duration::from_millis(600);
/// Samples taken per benchmark; the median is reported.
const SAMPLES: usize = 7;

/// A named group of benchmarks, printed as an aligned block.
pub struct Group {
    name: String,
    printed_header: bool,
}

impl Group {
    /// Starts a group (mirrors the paper-figure naming used before).
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            printed_header: false,
        }
    }

    /// Times `f`, reporting the median ns per call under `label`.
    ///
    /// `f` should return something observable; the result is passed through
    /// [`std::hint::black_box`] so the work cannot be optimized away.
    pub fn bench<T>(&mut self, label: &str, mut f: impl FnMut() -> T) {
        if !self.printed_header {
            println!("{}", self.name);
            self.printed_header = true;
        }
        // Warm-up and calibration: how many iterations fit one sample?
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let per_sample = (BUDGET / SAMPLES as u32).max(Duration::from_millis(10));
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[SAMPLES / 2];
        println!(
            "  {label:<40} {:>14}/iter  ({iters} iters/sample)",
            fmt_ns(median)
        );
    }
}

/// Formats nanoseconds with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_formats() {
        let mut g = Group::new("smoke");
        g.bench("noop", || 1 + 1);
        assert_eq!(fmt_ns(12.0), "12 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500 s");
    }
}
