//! CLI entry point regenerating the paper's figures.
//!
//! ```text
//! figures <experiment|all> [--n N] [--dims D] [--sigma S] [--seed S]
//!                          [--out DIR] [--quick]
//! ```
//!
//! Experiments: fig10-prog, fig10-time, fig11, fig12, fig13, cellbound,
//! ablate-delta, ablate-order, ssmj-soundness, all.
//!
//! Run in release mode: `cargo run --release -p progxe-bench --bin figures -- all`.

use progxe_bench::figures::{
    ablate_delta, ablate_order, cellbound, fdom, fig10_prog, fig10_time, fig11, fig12, fig13,
    ingest, kernels, obs, scaling, serving, ssmj_soundness, threads, ExpOptions,
};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: figures <experiment|all> [options]

experiments:
  fig10-prog      Figure 10 a-c  progressiveness of the ProgXe variations
  fig10-time      Figure 10 d-f  total time vs join selectivity (variations)
  fig11           Figure 11 a-f  ProgXe / ProgXe+ / SSMJ progressiveness
  fig12           Figure 12 a-b  d = 5 progressiveness (SSMJ degenerates)
  fig13           Figure 13 a-c  total time vs selectivity vs SSMJ
  cellbound       Section III-B  comparable-cell bound, measured
  ablate-delta    Section VI-B   grid-granularity sensitivity
  ablate-order    Section VI-B   ordering-policy cost/benefit
  ssmj-soundness  Section VII    SSMJ batch-1 false positives
  scaling         first-output latency growth vs N (vs SSMJ, JF-SL)
  threads         end-to-end speedup vs ProgXeConfig::threads (parallel runtime)
  ingest          streaming ingestion: first-result latency vs arrival rate
  fdom            flexible skylines: shrinkage + latency vs constraint tightness
  obs             tracing overhead: recorder off / null / ring (gated)
  kernels         columnar dominance kernels: batched vs scalar, blocker index vs naive (gated)
  serving         TCP serving layer: QPS + first-result latency vs concurrent clients
  all             everything above

options:
  --n N         override source cardinality
  --dims D      override output dimensionality
  --sigma S     override join selectivity (single-sigma experiments)
  --seed S      workload seed (default 0xC0FFEE)
  --out DIR     CSV output directory (default ./results)
  --quick       shrink workloads ~10x (smoke-test mode)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(exp) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let mut opt = ExpOptions::default();
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match flag {
            "--n" => match value(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => opt.n = Some(v),
                None => return bad_flag(flag),
            },
            "--dims" => match value(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => opt.dims = Some(v),
                None => return bad_flag(flag),
            },
            "--sigma" => match value(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => opt.sigma = Some(v),
                None => return bad_flag(flag),
            },
            "--seed" => match value(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => opt.seed = v,
                None => return bad_flag(flag),
            },
            "--out" => match value(&mut i) {
                Some(v) => opt.out = PathBuf::from(v),
                None => return bad_flag(flag),
            },
            "--quick" => opt.quick = true,
            other => {
                eprintln!("unknown option {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let run_one = |name: &str, opt: &ExpOptions| -> bool {
        match name {
            "fig10-prog" => fig10_prog(opt),
            "fig10-time" => fig10_time(opt),
            "fig11" => fig11(opt),
            "fig12" => fig12(opt),
            "fig13" => fig13(opt),
            "cellbound" => cellbound(opt),
            "ablate-delta" => ablate_delta(opt),
            "ablate-order" => ablate_order(opt),
            "ssmj-soundness" => ssmj_soundness(opt),
            "scaling" => scaling(opt),
            "threads" => threads(opt),
            "ingest" => ingest(opt),
            "fdom" => fdom(opt),
            "obs" => obs(opt),
            "kernels" => kernels(opt),
            "serving" => serving(opt),
            _ => return false,
        }
        true
    };

    match exp.as_str() {
        "all" => {
            for name in [
                "fig10-prog",
                "fig10-time",
                "fig11",
                "fig12",
                "fig13",
                "cellbound",
                "ablate-delta",
                "ablate-order",
                "ssmj-soundness",
                "scaling",
                "threads",
                "ingest",
                "fdom",
                "obs",
                "kernels",
                "serving",
            ] {
                println!();
                run_one(name, &opt);
            }
            ExitCode::SUCCESS
        }
        name if run_one(name, &opt) => ExitCode::SUCCESS,
        other => {
            eprintln!("unknown experiment {other:?}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn bad_flag(flag: &str) -> ExitCode {
    eprintln!("flag {flag} needs a valid value\n{USAGE}");
    ExitCode::FAILURE
}
