//! One function per paper figure/ablation: generate the workload(s), run
//! the algorithms, print the series the figure plots, write CSVs.
//!
//! Figure-to-function map (see DESIGN.md §3 and EXPERIMENTS.md):
//!
//! | Paper artifact | Function | Series |
//! |---|---|---|
//! | Fig. 10 a–c | [`fig10_prog`] | results vs time, 4 ProgXe variants × 3 distributions, σ=0.001 |
//! | Fig. 10 d–f | [`fig10_time`] | total time vs σ, 4 ProgXe variants × 3 distributions |
//! | Fig. 11 a–f | [`fig11`] | results vs time, ProgXe/ProgXe+/SSMJ, σ ∈ {0.01, 0.1} |
//! | Fig. 12 a–b | [`fig12`] | results vs time at d = 5, σ = 0.1 |
//! | Fig. 13 a–c | [`fig13`] | total time vs σ, ProgXe/ProgXe+/SSMJ |
//! | Sec. III-B bound | [`cellbound`] | comparable cells vs `k^d − (k−1)^d` |
//! | Sec. VI-B δ remark | [`ablate_delta`] | grid-granularity sensitivity |
//! | Sec. VI-B overhead claim | [`ablate_order`] | ProgOrder cost vs benefit |
//! | Sec. VII claim | [`ssmj_soundness`] | SSMJ batch-1 false positives |
//! | Figs. 11–12 at scale | [`scaling`] | first-output latency vs N |

use crate::report::{
    fmt_duration, fmt_opt_duration, json_object, json_str, write_csv, write_json, Table,
};
use crate::runners::{default_config_for, run_algo, run_algo_with_timeout, AlgoKind, RunResult};
use progxe_core::config::OrderingPolicy;
use progxe_core::executor::ProgXe;
use progxe_core::mapping::MapSet;
use progxe_core::session::ProgressiveEngine;
use progxe_core::sink::CountSink;
use progxe_core::source::SourceView;
use progxe_datagen::{Distribution, SmjWorkload, WorkloadSpec};
use progxe_runtime::ParallelProgXe;
use progxe_skyline::Preference;
use std::path::PathBuf;
use std::time::Duration;

/// Shared experiment options (CLI overrides).
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Cardinality override (default figure-specific).
    pub n: Option<usize>,
    /// Dimensionality override.
    pub dims: Option<usize>,
    /// Selectivity override (single-σ experiments only).
    pub sigma: Option<f64>,
    /// Workload seed.
    pub seed: u64,
    /// Output directory for CSVs.
    pub out: PathBuf,
    /// Shrink sizes drastically (test/CI mode).
    pub quick: bool,
}

impl Default for ExpOptions {
    fn default() -> Self {
        Self {
            n: None,
            dims: None,
            sigma: None,
            seed: 0xC0FFEE,
            out: PathBuf::from("results"),
            quick: false,
        }
    }
}

impl ExpOptions {
    fn pick_n(&self, default: usize) -> usize {
        let n = self.n.unwrap_or(default);
        if self.quick {
            (n / 10).max(60)
        } else {
            n
        }
    }

    fn pick_dims(&self, default: usize) -> usize {
        self.dims.unwrap_or(default)
    }
}

fn workload(n: usize, dims: usize, dist: Distribution, sigma: f64, seed: u64) -> SmjWorkload {
    WorkloadSpec::new(n, dims, dist, sigma)
        .with_seed(seed)
        .generate()
}

fn progressiveness_rows(dist: Distribution, sigma: f64, run: &RunResult) -> Vec<Vec<String>> {
    run.records
        .iter()
        .map(|r| {
            vec![
                dist.name().to_string(),
                format!("{sigma}"),
                run.algo.to_string(),
                format!("{}", r.elapsed.as_micros()),
                format!("{}", r.cumulative),
            ]
        })
        .collect()
}

fn summarize(table: &mut Table, dist: Distribution, run: &RunResult) {
    table.row(vec![
        dist.name().to_string(),
        run.algo.to_string(),
        format!("{}", run.results),
        fmt_opt_duration(run.first_result()),
        fmt_opt_duration(run.time_to_fraction(0.25)),
        fmt_opt_duration(run.time_to_fraction(0.5)),
        fmt_opt_duration(run.time_to_fraction(0.75)),
        fmt_duration(run.total_time),
    ]);
}

const PROG_HEADER: [&str; 8] = [
    "distribution",
    "algo",
    "results",
    "first",
    "t25",
    "t50",
    "t75",
    "total",
];
const SERIES_HEADER: [&str; 5] = ["distribution", "sigma", "algo", "elapsed_us", "cumulative"];

/// Figure 10 a–c: progressiveness of the four ProgXe variations
/// (correlated / independent / anti-correlated; σ = 0.001; d = 4).
pub fn fig10_prog(opt: &ExpOptions) {
    let n = opt.pick_n(4000);
    let dims = opt.pick_dims(4);
    let sigma = opt.sigma.unwrap_or(0.001);
    println!(
        "== Figure 10 a–c: ProgXe variations, progressiveness (N={n}, d={dims}, sigma={sigma}) =="
    );
    let mut table = Table::new(&PROG_HEADER);
    let mut series = Vec::new();
    for dist in Distribution::ALL {
        let w = workload(n, dims, dist, sigma, opt.seed);
        for kind in AlgoKind::PROGXE_VARIATIONS {
            let run = run_algo(kind, &w);
            series.extend(progressiveness_rows(dist, sigma, &run));
            summarize(&mut table, dist, &run);
        }
    }
    println!("{}", table.render());
    let path = write_csv(&opt.out, "fig10_prog_series", &SERIES_HEADER, &series).unwrap();
    println!("series written to {}", path.display());
}

/// Figure 10 d–f: total execution time of the four ProgXe variations over
/// the σ sweep.
pub fn fig10_time(opt: &ExpOptions) {
    sweep_sigma(
        "fig10_time",
        "Figure 10 d–f",
        &AlgoKind::PROGXE_VARIATIONS,
        opt,
    );
}

/// Figure 13 a–c: total execution time of ProgXe, ProgXe+ and SSMJ over the
/// σ sweep.
pub fn fig13(opt: &ExpOptions) {
    sweep_sigma("fig13_time", "Figure 13 a–c", &AlgoKind::VS_SSMJ, opt);
}

fn sweep_sigma(csv: &str, title: &str, algos: &[AlgoKind], opt: &ExpOptions) {
    let n = opt.pick_n(1000);
    let dims = opt.pick_dims(4);
    let sigmas: &[f64] = if opt.quick {
        &[0.001, 0.01]
    } else {
        &[0.0001, 0.001, 0.01, 0.1]
    };
    println!("== {title}: total time vs join selectivity (N={n}, d={dims}) ==");
    let mut table = Table::new(&["distribution", "sigma", "algo", "total", "results"]);
    let mut rows = Vec::new();
    for dist in Distribution::ALL {
        for &sigma in sigmas {
            let w = workload(n, dims, dist, sigma, opt.seed);
            for &kind in algos {
                let run = run_algo(kind, &w);
                table.row(vec![
                    dist.name().into(),
                    format!("{sigma}"),
                    run.algo.into(),
                    fmt_duration(run.total_time),
                    format!("{}", run.results),
                ]);
                rows.push(vec![
                    dist.name().to_string(),
                    format!("{sigma}"),
                    run.algo.to_string(),
                    format!("{}", run.total_time.as_micros()),
                    format!("{}", run.results),
                ]);
            }
        }
    }
    println!("{}", table.render());
    let path = write_csv(
        &opt.out,
        csv,
        &["distribution", "sigma", "algo", "total_us", "results"],
        &rows,
    )
    .unwrap();
    println!("rows written to {}", path.display());
}

/// Figure 11 a–f: progressiveness of ProgXe, ProgXe+ and SSMJ at σ = 0.01
/// and σ = 0.1 (d = 4).
pub fn fig11(opt: &ExpOptions) {
    let dims = opt.pick_dims(4);
    println!("== Figure 11 a–f: ProgXe vs ProgXe+ vs SSMJ, progressiveness (d={dims}) ==");
    let mut series = Vec::new();
    let mut table = Table::new(&PROG_HEADER);
    for (sigma, default_n) in [(0.01, 4000), (0.1, 2000)] {
        let sigma = opt.sigma.unwrap_or(sigma);
        let n = opt.pick_n(default_n);
        println!("-- sigma = {sigma}, N = {n} --");
        for dist in Distribution::ALL {
            let w = workload(n, dims, dist, sigma, opt.seed);
            for kind in AlgoKind::VS_SSMJ {
                let run = run_algo(kind, &w);
                series.extend(progressiveness_rows(dist, sigma, &run));
                summarize(&mut table, dist, &run);
            }
        }
    }
    println!("{}", table.render());
    let path = write_csv(&opt.out, "fig11_series", &SERIES_HEADER, &series).unwrap();
    println!("series written to {}", path.display());
}

/// Figure 12 a–b: d = 5, σ = 0.1 — independent and anti-correlated (the
/// setting where SSMJ degenerates; the paper reports it failing entirely on
/// anti-correlated data).
pub fn fig12(opt: &ExpOptions) {
    let n = opt.pick_n(1500);
    let dims = opt.pick_dims(5);
    let sigma = opt.sigma.unwrap_or(0.1);
    let budget = Duration::from_secs(if opt.quick { 20 } else { 120 });
    println!("== Figure 12 a–b: higher dimension (N={n}, d={dims}, sigma={sigma}) ==");
    let mut series = Vec::new();
    let mut table = Table::new(&PROG_HEADER);
    for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
        let w = workload(n, dims, dist, sigma, opt.seed);
        for kind in AlgoKind::VS_SSMJ {
            // SSMJ runs under a wall-clock budget: the paper's Figure 12.b
            // annotates "SSMJ did not return results even after several
            // hours" on anti-correlated data.
            match run_algo_with_timeout(kind, &w, budget) {
                Some(run) => {
                    series.extend(progressiveness_rows(dist, sigma, &run));
                    summarize(&mut table, dist, &run);
                }
                None => {
                    table.row(vec![
                        dist.name().into(),
                        kind.label().into(),
                        "0".into(),
                        format!(">{budget:?}"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        format!(">{budget:?}"),
                    ]);
                    println!(
                        "  {} produced no results within {budget:?} on {} data \
                         (cf. the paper's Fig. 12.b annotation)",
                        kind.label(),
                        dist.name()
                    );
                }
            }
        }
    }
    println!("{}", table.render());
    let path = write_csv(&opt.out, "fig12_series", &SERIES_HEADER, &series).unwrap();
    println!("series written to {}", path.display());
}

/// Scaling trend: first-output latency and total time vs N on
/// anti-correlated data. This is the laptop-scale demonstration of why the
/// paper's 500K-tuple runs separate ProgXe from SSMJ by orders of
/// magnitude: SSMJ's first batch waits for its entire phase-1 join +
/// skyline (growing superlinearly with N), while ProgXe's first safe batch
/// arrives after one region's tuple-level work (near-constant).
pub fn scaling(opt: &ExpOptions) {
    let dims = opt.pick_dims(4);
    let sigma = opt.sigma.unwrap_or(0.01);
    let ns: &[usize] = if opt.quick {
        &[250, 500]
    } else {
        &[1000, 2000, 4000, 8000, 16000]
    };
    println!("== Scaling: first-output latency vs N (anti-correlated, d={dims}, sigma={sigma}) ==");
    let mut table = Table::new(&["N", "algo", "results", "first output", "total"]);
    let mut rows = Vec::new();
    for &n in ns {
        let w = workload(n, dims, Distribution::AntiCorrelated, sigma, opt.seed);
        for kind in [AlgoKind::ProgXe, AlgoKind::Ssmj, AlgoKind::JfSl] {
            let run = run_algo(kind, &w);
            table.row(vec![
                format!("{n}"),
                run.algo.into(),
                format!("{}", run.results),
                fmt_opt_duration(run.first_result()),
                fmt_duration(run.total_time),
            ]);
            rows.push(vec![
                format!("{n}"),
                run.algo.to_string(),
                format!("{}", run.results),
                run.first_result()
                    .map(|d| d.as_micros().to_string())
                    .unwrap_or_default(),
                format!("{}", run.total_time.as_micros()),
            ]);
        }
    }
    println!("{}", table.render());
    let path = write_csv(
        &opt.out,
        "scaling",
        &["n", "algo", "results", "first_us", "total_us"],
        &rows,
    )
    .unwrap();
    println!("rows written to {}", path.display());
}

/// Thread scaling: end-to-end time of the 10k anti-correlated workload
/// (the skyline-hostile case) against `ProgXeConfig::threads`. `threads=1`
/// runs the unified driver's `Inline` backend; higher counts run its
/// `Pooled` backend over the engine's shared runtime. Reports per-row
/// speedup over the inline baseline — the ROADMAP's "as fast as the
/// hardware allows" tracking number — and additionally measures the inline
/// local-skyline pre-filter against the pre-filter-free streaming
/// arrangement (mode `inline-nofilter`), the measurement behind
/// `ProgXeConfig::prefilter_min_pairs`.
///
/// Besides the CSV, writes machine-readable `BENCH_threads.json`
/// (workload, per-run threads / wall-ms / first-result-ms) so the perf
/// trajectory is tracked across PRs; CI uploads it as an artifact.
pub fn threads(opt: &ExpOptions) {
    let n = opt.pick_n(10_000);
    // Defaults pick the tuple-phase-heavy corner (d = 3, σ = 0.1): enough
    // join matches per region that region fan-out, not the serial
    // look-ahead front end, dominates the wall clock.
    let dims = opt.pick_dims(3);
    let sigma = opt.sigma.unwrap_or(0.1);
    let counts: &[usize] = if opt.quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!(
        "== Thread scaling: total time vs threads \
         (anti-correlated, N={n}, d={dims}, sigma={sigma}; {hw} hardware threads) =="
    );
    let w = workload(n, dims, Distribution::AntiCorrelated, sigma, opt.seed);
    let maps = MapSet::pairwise_sum(dims, Preference::all_lowest(dims));
    let r = SourceView::new(&w.r.attrs, &w.r.join_keys).expect("parallel arrays");
    let t = SourceView::new(&w.t.attrs, &w.t.join_keys).expect("parallel arrays");

    let run_engine = |engine: Box<dyn ProgressiveEngine>| {
        let mut session = engine.open(&r, &t, &maps).expect("valid configuration");
        let mut first: Option<Duration> = None;
        while let Some(event) = session.next_batch() {
            if first.is_none() && !event.tuples.is_empty() {
                first = Some(event.elapsed);
            }
        }
        (first, session.finish())
    };

    struct Run {
        mode: &'static str,
        threads: usize,
        first: Option<Duration>,
        stats: progxe_core::stats::ExecStats,
    }
    let base_cfg = default_config_for(dims, sigma);
    let mut runs: Vec<Run> = Vec::new();
    // Discarded warm-up: first-touch allocation and CPU ramp must not be
    // charged to whichever measured arrangement happens to run first.
    let _ = run_engine(Box::new(ProgXe::new(base_cfg.clone())));
    // Pre-filter measurement: the pre-filter-free streaming arrangement
    // (the old sequential hot path) against the Inline default below.
    {
        let config = base_cfg.clone().with_prefilter_min_pairs(usize::MAX);
        let (first, stats) = run_engine(Box::new(ProgXe::new(config)));
        runs.push(Run {
            mode: "inline-nofilter",
            threads: 1,
            first,
            stats,
        });
    }
    for &count in counts {
        let config = base_cfg.clone().with_threads(count);
        let (mode, engine): (_, Box<dyn ProgressiveEngine>) = if count > 1 {
            ("pooled", Box::new(ParallelProgXe::new(config)))
        } else {
            ("inline", Box::new(ProgXe::new(config)))
        };
        let (first, stats) = run_engine(engine);
        runs.push(Run {
            mode,
            threads: count,
            first,
            stats,
        });
    }

    // Speedups are relative to the inline (threads = 1, default
    // pre-filter gate) run.
    let baseline = runs
        .iter()
        .find(|r| r.mode == "inline")
        .map(|r| r.stats.total_time)
        .expect("counts always include 1");
    let mut table = Table::new(&[
        "mode",
        "threads",
        "results",
        "first output",
        "total",
        "speedup",
    ]);
    let mut rows = Vec::new();
    let mut json_runs = Vec::new();
    for run in &runs {
        println!("   {}/threads={}: {}", run.mode, run.threads, run.stats);
        let total = run.stats.total_time;
        let speedup = baseline.as_secs_f64() / total.as_secs_f64().max(1e-9);
        table.row(vec![
            run.mode.to_string(),
            format!("{}", run.threads),
            format!("{}", run.stats.results_emitted),
            fmt_opt_duration(run.first),
            fmt_duration(total),
            format!("{speedup:.2}x"),
        ]);
        rows.push(vec![
            run.mode.to_string(),
            format!("{}", run.threads),
            format!("{}", run.stats.results_emitted),
            run.first
                .map(|d| d.as_micros().to_string())
                .unwrap_or_default(),
            format!("{}", total.as_micros()),
            format!("{speedup:.3}"),
        ]);
        json_runs.push(json_object(&[
            ("mode", json_str(run.mode)),
            ("threads", format!("{}", run.threads)),
            ("wall_ms", format!("{:.3}", total.as_secs_f64() * 1e3)),
            (
                "first_result_ms",
                run.first
                    .map(|d| format!("{:.3}", d.as_secs_f64() * 1e3))
                    .unwrap_or_else(|| "null".into()),
            ),
            ("results", format!("{}", run.stats.results_emitted)),
            (
                "tuples_prefiltered",
                format!("{}", run.stats.tuples_prefiltered),
            ),
            ("speedup_vs_inline", format!("{speedup:.3}")),
        ]));
    }
    println!("{}", table.render());
    if hw < 4 {
        println!(
            "note: only {hw} hardware thread(s) available — speedups here are \
             host-bound; run on a multi-core machine for the real curve"
        );
    }
    let path = write_csv(
        &opt.out,
        "threads",
        &[
            "mode", "threads", "results", "first_us", "total_us", "speedup",
        ],
        &rows,
    )
    .unwrap();
    println!("rows written to {}", path.display());
    let json = json_object(&[
        (
            "workload",
            json_object(&[
                ("distribution", json_str("anti-correlated")),
                ("n", format!("{n}")),
                ("dims", format!("{dims}")),
                ("sigma", format!("{sigma}")),
                ("seed", format!("{}", opt.seed)),
            ]),
        ),
        ("hardware_threads", format!("{hw}")),
        (
            "prefilter_min_pairs",
            format!("{}", base_cfg.prefilter_min_pairs),
        ),
        ("runs", format!("[{}]", json_runs.join(", "))),
    ]);
    let path = write_json(&opt.out, "BENCH_threads", &json).unwrap();
    println!("json written to {}", path.display());
}

/// One measured streaming-ingestion run (see [`ingest`]).
pub struct IngestRun {
    /// Arrival-schedule family.
    pub schedule: &'static str,
    /// Executor backend (`inline` / `pooled`).
    pub backend: &'static str,
    /// Simulated per-step arrival interval.
    pub interval_ms: f64,
    /// Simulated instant the last batch arrived.
    pub arrival_end_ms: f64,
    /// Simulated first-result instant of the streaming engine.
    pub first_result_ms: Option<f64>,
    /// Simulated first-result instant of the batch engine (full arrival +
    /// its measured time-to-first-result).
    pub batch_first_result_ms: f64,
    /// Wall-clock compute spent by the streaming session.
    pub compute_ms: f64,
    /// Results emitted.
    pub results: u64,
}

/// Streaming ingestion: first-result latency vs arrival rate.
///
/// Simulates two remote sources delivering an independent d=3 workload in
/// batches with a **virtual arrival clock** (batch `i` lands at
/// `(i+1)·interval`; measured compute wall-time is added on top — a
/// conservative model where compute never overlaps the next arrival).
/// Four arrival families from `progxe_datagen::arrival` are swept —
/// `uniform-shuffle`, `attr-sorted`, `bursty`, `trickle` — against the
/// batch engine, which by construction cannot start before the *last*
/// batch arrives. On watermarked sorted/trickle arrival the streaming
/// engine's first result lands well before full arrival; on the shuffled
/// schedule it degrades to the batch engine's latency (watermarks barely
/// move) — the two ends of the remote-source spectrum.
///
/// Writes `ingest.csv` and machine-readable `BENCH_ingest.json`
/// (arrival-rate vs first-result-ms per schedule × backend); CI uploads
/// the JSON as an artifact next to `BENCH_threads.json`.
pub fn ingest(opt: &ExpOptions) {
    let runs = ingest_measurements(opt);
    write_ingest_outputs(opt, &runs);
}

/// Renders + persists one set of [`IngestRun`]s (`ingest.csv`,
/// `BENCH_ingest.json`). Split from [`ingest`] so tests can assert on the
/// measurements and then exercise the writer without re-running the sweep.
fn write_ingest_outputs(opt: &ExpOptions, runs: &[IngestRun]) {
    let mut table = Table::new(&[
        "schedule",
        "backend",
        "interval",
        "arrival end",
        "stream first",
        "batch first",
        "results",
    ]);
    let mut rows = Vec::new();
    let mut json_runs = Vec::new();
    for run in runs {
        table.row(vec![
            run.schedule.to_string(),
            run.backend.to_string(),
            format!("{:.0}ms", run.interval_ms),
            format!("{:.1}ms", run.arrival_end_ms),
            run.first_result_ms
                .map(|v| format!("{v:.1}ms"))
                .unwrap_or_else(|| "-".into()),
            format!("{:.1}ms", run.batch_first_result_ms),
            format!("{}", run.results),
        ]);
        rows.push(vec![
            run.schedule.to_string(),
            run.backend.to_string(),
            format!("{:.3}", run.interval_ms),
            format!("{:.3}", run.arrival_end_ms),
            run.first_result_ms
                .map(|v| format!("{v:.3}"))
                .unwrap_or_default(),
            format!("{:.3}", run.batch_first_result_ms),
            format!("{:.3}", run.compute_ms),
            format!("{}", run.results),
        ]);
        json_runs.push(json_object(&[
            ("schedule", json_str(run.schedule)),
            ("backend", json_str(run.backend)),
            ("interval_ms", format!("{:.3}", run.interval_ms)),
            ("arrival_end_ms", format!("{:.3}", run.arrival_end_ms)),
            (
                "first_result_ms",
                run.first_result_ms
                    .map(|v| format!("{v:.3}"))
                    .unwrap_or_else(|| "null".into()),
            ),
            (
                "batch_first_result_ms",
                format!("{:.3}", run.batch_first_result_ms),
            ),
            ("compute_ms", format!("{:.3}", run.compute_ms)),
            ("results", format!("{}", run.results)),
        ]));
    }
    println!("{}", table.render());
    let path = write_csv(
        &opt.out,
        "ingest",
        &[
            "schedule",
            "backend",
            "interval_ms",
            "arrival_end_ms",
            "first_ms",
            "batch_first_ms",
            "compute_ms",
            "results",
        ],
        &rows,
    )
    .unwrap();
    println!("rows written to {}", path.display());
    let json = json_object(&[
        (
            "workload",
            json_object(&[
                ("distribution", json_str("independent")),
                ("n", format!("{}", opt.pick_n(10_000))),
                ("dims", format!("{}", opt.pick_dims(3))),
                ("sigma", format!("{}", opt.sigma.unwrap_or(0.1))),
                ("seed", format!("{}", opt.seed)),
            ]),
        ),
        ("runs", format!("[{}]", json_runs.join(", "))),
    ]);
    let path = write_json(&opt.out, "BENCH_ingest", &json).unwrap();
    println!("json written to {}", path.display());
}

/// The measured core of [`ingest`], separated so tests can assert on the
/// numbers (notably: trickle first-result strictly below the batch
/// engine's) without parsing JSON.
pub fn ingest_measurements(opt: &ExpOptions) -> Vec<IngestRun> {
    use progxe_core::ingest::{IngestPoll, IngestSession, SourceId, StreamSpec};
    use progxe_datagen::ArrivalSpec;
    use std::time::Instant;

    let n = opt.pick_n(10_000);
    let dims = opt.pick_dims(3);
    let sigma = opt.sigma.unwrap_or(0.1);
    println!("== Streaming ingestion: first-result latency vs arrival rate (independent, N={n}, d={dims}, sigma={sigma}) ==");
    let w = workload(n, dims, Distribution::Independent, sigma, opt.seed);
    let maps = MapSet::pairwise_sum(dims, Preference::all_lowest(dims));
    let spec = || StreamSpec::new(vec![1.0; dims], vec![100.0; dims]).unwrap();
    let config = default_config_for(dims, sigma);

    // Batch-engine time-to-first-result, measured once per backend: it
    // cannot start before the full input arrived, so its simulated first
    // result is `arrival_end + this`.
    let r_view = SourceView::new(&w.r.attrs, &w.r.join_keys).expect("parallel arrays");
    let t_view = SourceView::new(&w.t.attrs, &w.t.join_keys).expect("parallel arrays");
    let batch_first = |pooled: bool| -> f64 {
        let engine: Box<dyn ProgressiveEngine> = if pooled {
            Box::new(ParallelProgXe::new(config.clone().with_threads(4)))
        } else {
            Box::new(ProgXe::new(config.clone()))
        };
        let mut session = engine.open(&r_view, &t_view, &maps).expect("valid config");
        let mut first = None;
        while let Some(event) = session.next_batch() {
            if first.is_none() && !event.tuples.is_empty() {
                first = Some(event.elapsed);
            }
        }
        session.finish();
        first.map(|d| d.as_secs_f64() * 1e3).unwrap_or(f64::NAN)
    };
    let batch_first_by_backend = [batch_first(false), batch_first(true)];

    let schedules: Vec<(&'static str, ArrivalSpec)> = vec![
        (
            "uniform-shuffle",
            ArrivalSpec::uniform_shuffle(opt.seed, (n / 16).max(1)),
        ),
        ("attr-sorted", ArrivalSpec::attr_sorted((n / 16).max(1))),
        (
            "bursty",
            ArrivalSpec::bursty(opt.seed, (n / 64).max(1), (n / 8).max(1)),
        ),
        ("trickle", ArrivalSpec::trickle((n / 128).max(1))),
    ];
    let intervals_ms: &[f64] = if opt.quick { &[5.0] } else { &[1.0, 5.0, 20.0] };

    let mut runs = Vec::new();
    for (name, sched_spec) in &schedules {
        let mut t_variant = sched_spec.clone();
        t_variant.seed = sched_spec.seed.wrapping_add(1);
        let r_sched = sched_spec.schedule(&w.r);
        let t_sched = t_variant.schedule(&w.t);
        let steps = r_sched.batches.len().max(t_sched.batches.len());
        for &interval in intervals_ms {
            for (bi, backend) in ["inline", "pooled"].iter().enumerate() {
                let pooled = *backend == "pooled";
                let mut session = if pooled {
                    ParallelProgXe::new(config.clone().with_threads(4))
                        .open_ingest(&maps, spec(), spec())
                        .expect("valid config")
                } else {
                    IngestSession::open(&config, &maps, spec(), spec()).expect("valid config")
                };
                let mut compute = std::time::Duration::ZERO;
                let mut first: Option<f64> = None;
                let mut results = 0u64;
                let drain = |session: &mut IngestSession,
                             arrival_clock_ms: f64,
                             compute: &mut std::time::Duration,
                             first: &mut Option<f64>,
                             results: &mut u64| {
                    let t0 = Instant::now();
                    while let IngestPoll::Batch(event) = session.poll() {
                        if first.is_none() && !event.tuples.is_empty() {
                            *first = Some(
                                arrival_clock_ms + (*compute + t0.elapsed()).as_secs_f64() * 1e3,
                            );
                        }
                        *results += event.tuples.len() as u64;
                    }
                    *compute += t0.elapsed();
                };
                for i in 0..steps {
                    let arrival_clock_ms = (i + 1) as f64 * interval;
                    for (side, rel, sched) in
                        [(SourceId::R, &w.r, &r_sched), (SourceId::T, &w.t, &t_sched)]
                    {
                        let Some(batch) = sched.batches.get(i) else {
                            continue;
                        };
                        let t0 = Instant::now();
                        let rows: Vec<(u32, &[f64], u32)> = batch
                            .rows
                            .iter()
                            .map(|&row| {
                                (
                                    row,
                                    rel.attrs_of(row as usize),
                                    rel.join_key_of(row as usize),
                                )
                            })
                            .collect();
                        session.push_with_ids(side, &rows).expect("valid batch");
                        if let Some(wm) = &batch.watermark {
                            session.set_watermark(side, wm).expect("sound watermark");
                        }
                        compute += t0.elapsed();
                        drain(
                            &mut session,
                            arrival_clock_ms,
                            &mut compute,
                            &mut first,
                            &mut results,
                        );
                    }
                }
                let arrival_end_ms = steps as f64 * interval;
                session.close(SourceId::R);
                session.close(SourceId::T);
                drain(
                    &mut session,
                    arrival_end_ms,
                    &mut compute,
                    &mut first,
                    &mut results,
                );
                let stats = session.finish();
                assert!(!stats.cancelled);
                runs.push(IngestRun {
                    schedule: name,
                    backend,
                    interval_ms: interval,
                    arrival_end_ms,
                    first_result_ms: first,
                    batch_first_result_ms: arrival_end_ms + batch_first_by_backend[bi],
                    compute_ms: compute.as_secs_f64() * 1e3,
                    results,
                });
            }
        }
    }
    runs
}

/// One measured flexible-skyline run (see [`fdom`]).
pub struct FdomRun {
    /// Workload distribution family.
    pub distribution: &'static str,
    /// Constraint tightness `t` of the weight band (0 = whole simplex ≡
    /// Pareto; → 1 pins equal weights). `None` marks the Pareto baseline.
    pub tightness: Option<f64>,
    /// Final result-set size.
    pub results: u64,
    /// Pareto skyline size of the same workload (the shrinkage baseline).
    pub pareto_results: u64,
    /// First proven-final result latency.
    pub first_result_ms: Option<f64>,
    /// End-to-end wall time.
    pub wall_ms: f64,
    /// Pareto-optimal tuples removed by the emission filter.
    pub fdom_filtered: u64,
}

/// Flexible skylines: result-set shrinkage and first-result latency vs
/// weight-constraint tightness, across the three distributions.
///
/// For each distribution the ProgXe engine runs once under Pareto and once
/// per tightness step of the nested `simplex_band` family
/// (`progxe_datagen::weights`). As the band tightens the admissible
/// scoring weights shrink, more trade-off pairs become F-dominated, and
/// the answer interpolates from the full skyline toward a top-1-style
/// result — the shrinkage column. Writes `fdom.csv` and machine-readable
/// `BENCH_fdom.json`; CI uploads the JSON next to the threads/ingest
/// artifacts.
pub fn fdom(opt: &ExpOptions) {
    let runs = fdom_measurements(opt);
    write_fdom_outputs(opt, &runs);
}

/// The measured core of [`fdom`], separated so tests can assert on the
/// numbers (tightness 0 ≡ Pareto; counts non-increasing along the nested
/// sweep) without re-running the sweep for the writer.
pub fn fdom_measurements(opt: &ExpOptions) -> Vec<FdomRun> {
    use progxe_core::fdom::flexible_model;
    use progxe_datagen::simplex_band;

    let n = opt.pick_n(4_000);
    let dims = opt.pick_dims(3);
    let sigma = opt.sigma.unwrap_or(0.01);
    let tightnesses: &[f64] = if opt.quick {
        &[0.0, 0.5, 0.9]
    } else {
        &[0.0, 0.25, 0.5, 0.75, 0.9]
    };
    println!(
        "== Flexible skylines: shrinkage + first-result latency vs constraint tightness \
         (N={n}, d={dims}, sigma={sigma}) =="
    );
    let config = default_config_for(dims, sigma);
    let run_once = |maps: &MapSet, r: &SourceView<'_>, t: &SourceView<'_>| {
        let mut session = ProgXe::new(config.clone())
            .open(r, t, maps)
            .expect("valid configuration");
        let mut first: Option<Duration> = None;
        while let Some(event) = session.next_batch() {
            if first.is_none() && !event.tuples.is_empty() {
                first = Some(event.elapsed);
            }
        }
        (first, session.finish())
    };

    let mut runs = Vec::new();
    for dist in Distribution::ALL {
        let w = workload(n, dims, dist, sigma, opt.seed);
        let r = SourceView::new(&w.r.attrs, &w.r.join_keys).expect("parallel arrays");
        let t = SourceView::new(&w.t.attrs, &w.t.join_keys).expect("parallel arrays");
        let pareto_maps = MapSet::pairwise_sum(dims, Preference::all_lowest(dims));
        let (p_first, p_stats) = run_once(&pareto_maps, &r, &t);
        let pareto_results = p_stats.results_emitted;
        runs.push(FdomRun {
            distribution: dist.name(),
            tightness: None,
            results: pareto_results,
            pareto_results,
            first_result_ms: p_first.map(|d| d.as_secs_f64() * 1e3),
            wall_ms: p_stats.total_time.as_secs_f64() * 1e3,
            fdom_filtered: 0,
        });
        for &tight in tightnesses {
            let model = flexible_model(dims, simplex_band(dims, tight)).expect("band is non-empty");
            let maps = MapSet::pairwise_sum(dims, Preference::all_lowest(dims))
                .with_dominance(model)
                .expect("dims match");
            let (first, stats) = run_once(&maps, &r, &t);
            runs.push(FdomRun {
                distribution: dist.name(),
                tightness: Some(tight),
                results: stats.results_emitted,
                pareto_results,
                first_result_ms: first.map(|d| d.as_secs_f64() * 1e3),
                wall_ms: stats.total_time.as_secs_f64() * 1e3,
                fdom_filtered: stats.tuples_fdom_filtered,
            });
        }
    }
    runs
}

/// Renders + persists one set of [`FdomRun`]s (`fdom.csv`,
/// `BENCH_fdom.json`).
fn write_fdom_outputs(opt: &ExpOptions, runs: &[FdomRun]) {
    let mut table = Table::new(&[
        "distribution",
        "tightness",
        "results",
        "shrinkage",
        "filtered",
        "first",
        "total",
    ]);
    let mut rows = Vec::new();
    let mut json_runs = Vec::new();
    for run in runs {
        let tightness = run
            .tightness
            .map(|t| format!("{t}"))
            .unwrap_or_else(|| "pareto".into());
        let shrinkage = if run.pareto_results == 0 {
            1.0
        } else {
            run.results as f64 / run.pareto_results as f64
        };
        table.row(vec![
            run.distribution.to_string(),
            tightness.clone(),
            format!("{}", run.results),
            format!("{shrinkage:.3}"),
            format!("{}", run.fdom_filtered),
            run.first_result_ms
                .map(|v| format!("{v:.1}ms"))
                .unwrap_or_else(|| "-".into()),
            format!("{:.1}ms", run.wall_ms),
        ]);
        rows.push(vec![
            run.distribution.to_string(),
            tightness.clone(),
            format!("{}", run.results),
            format!("{shrinkage:.4}"),
            format!("{}", run.fdom_filtered),
            run.first_result_ms
                .map(|v| format!("{v:.3}"))
                .unwrap_or_default(),
            format!("{:.3}", run.wall_ms),
        ]);
        json_runs.push(json_object(&[
            ("distribution", json_str(run.distribution)),
            (
                "tightness",
                run.tightness
                    .map(|t| format!("{t}"))
                    .unwrap_or_else(|| "null".into()),
            ),
            ("results", format!("{}", run.results)),
            ("pareto_results", format!("{}", run.pareto_results)),
            ("shrinkage", format!("{shrinkage:.4}")),
            ("fdom_filtered", format!("{}", run.fdom_filtered)),
            (
                "first_result_ms",
                run.first_result_ms
                    .map(|v| format!("{v:.3}"))
                    .unwrap_or_else(|| "null".into()),
            ),
            ("wall_ms", format!("{:.3}", run.wall_ms)),
        ]));
    }
    println!("{}", table.render());
    let path = write_csv(
        &opt.out,
        "fdom",
        &[
            "distribution",
            "tightness",
            "results",
            "shrinkage",
            "fdom_filtered",
            "first_ms",
            "total_ms",
        ],
        &rows,
    )
    .unwrap();
    println!("rows written to {}", path.display());
    let json = json_object(&[
        (
            "workload",
            json_object(&[
                ("n", format!("{}", opt.pick_n(4_000))),
                ("dims", format!("{}", opt.pick_dims(3))),
                ("sigma", format!("{}", opt.sigma.unwrap_or(0.01))),
                ("seed", format!("{}", opt.seed)),
            ]),
        ),
        ("runs", format!("[{}]", json_runs.join(", "))),
    ]);
    let path = write_json(&opt.out, "BENCH_fdom", &json).unwrap();
    println!("json written to {}", path.display());
}

/// One measured kernel-vs-scalar comparison (see [`kernels`]).
pub struct KernelRun {
    /// `"mask"` (batched dominated-mask vs per-row scalar loop) or
    /// `"blocker"` (kd-tree flexible blocker counts vs the retired
    /// `regions × cells` double loop).
    pub kind: &'static str,
    /// Value dimensions (mask rows) / polytope vertices (blocker rows).
    pub dims: usize,
    /// Batch rows (mask) / region count (blocker).
    pub n: usize,
    /// Query points (mask) / tracked cells (blocker).
    pub queries: usize,
    /// Best-of-repeats wall time of the scalar/naive side.
    pub scalar_ms: f64,
    /// Best-of-repeats wall time of the batched/indexed side.
    pub batched_ms: f64,
    /// `scalar_ms / batched_ms`.
    pub speedup: f64,
    /// Scalar throughput in million pair-tests per second.
    pub scalar_mpairs_s: f64,
    /// Batched throughput in million pair-tests per second.
    pub batched_mpairs_s: f64,
    /// Work the index actually did (blocker rows: tree node visits + leaf
    /// tests; mask rows: equals `naive_ops` — the mask has no early exit).
    pub index_ops: u64,
    /// Work the retired implementation would do (`n × queries`).
    pub naive_ops: u64,
}

/// Columnar-kernel microbenchmarks: batched dominated-mask throughput vs
/// the one-pair-at-a-time scalar loop across dims × batch sizes
/// (anti-correlated data — the dominance-heavy worst case), and the
/// kd-tree flexible blocker index vs the retired `regions × cells` loop at
/// growing region counts. Both sides are verified to produce identical
/// answers before timing is reported. Writes `kernels.csv` and
/// machine-readable `BENCH_kernels.json`; panics (failing CI) if the
/// batched kernel loses to scalar or the blocker index fails to do less
/// work than the naive loop.
pub fn kernels(opt: &ExpOptions) {
    let runs = kernel_measurements(opt);
    assert_kernel_gates(&runs, opt.quick);
    write_kernel_outputs(opt, &runs);
}

/// The measured core of [`kernels`], separated so tests can assert on the
/// numbers without re-running the sweep for the writer.
pub fn kernel_measurements(opt: &ExpOptions) -> Vec<KernelRun> {
    use progxe_skyline::kernel;
    use std::time::Instant;

    let queries = 64usize;
    let repeats = 5usize;
    let dims_list: &[usize] = if opt.quick { &[2, 3, 8] } else { &[2, 3, 5, 8] };
    let sizes: &[usize] = if opt.quick {
        &[512, 4_096]
    } else {
        &[1_000, 10_000, 100_000]
    };
    println!("== Columnar dominance kernels: batched vs scalar (anti-correlated) ==");

    let mut runs = Vec::new();
    for &d in dims_list {
        for &n in sizes {
            // Anti-correlated points: the dominance-heavy regime where the
            // window stays large and every pair is genuinely tested.
            let w = workload(n + queries, d, Distribution::AntiCorrelated, 0.01, opt.seed);
            let batch = &w.r.attrs.raw()[..n * d];
            let qs = &w.t.attrs.raw()[..queries * d];
            let mut mask = vec![false; n];

            let mut scalar_hits = 0u64;
            let mut scalar_ms = f64::INFINITY;
            for _ in 0..repeats {
                let t0 = Instant::now();
                let mut hits = 0u64;
                for q in qs.chunks_exact(d) {
                    for row in batch.chunks_exact(d) {
                        hits += u64::from(kernel::dominates_scalar(q, row));
                    }
                }
                scalar_ms = scalar_ms.min(t0.elapsed().as_secs_f64() * 1e3);
                scalar_hits = hits;
            }

            let mut batched_hits = 0u64;
            let mut batched_ms = f64::INFINITY;
            let mut pairs = 0u64;
            for _ in 0..repeats {
                let t0 = Instant::now();
                let mut hits = 0u64;
                for q in qs.chunks_exact(d) {
                    hits += kernel::dominated_mask(d, batch, q, &mut mask, &mut pairs) as u64;
                }
                batched_ms = batched_ms.min(t0.elapsed().as_secs_f64() * 1e3);
                batched_hits = hits;
            }
            assert_eq!(
                scalar_hits, batched_hits,
                "d={d} n={n}: batched kernel diverged from scalar"
            );

            let total_pairs = (n * queries) as u64;
            runs.push(KernelRun {
                kind: "mask",
                dims: d,
                n,
                queries,
                scalar_ms,
                batched_ms,
                speedup: scalar_ms / batched_ms,
                scalar_mpairs_s: total_pairs as f64 / (scalar_ms * 1e3),
                batched_mpairs_s: total_pairs as f64 / (batched_ms * 1e3),
                index_ops: total_pairs,
                naive_ops: total_pairs,
            });
        }
    }

    runs.extend(blocker_measurements(opt));
    runs
}

/// Blocker-index half of [`kernel_measurements`]: kd-tree dominance counts
/// vs the retired naive double loop, identical counts verified per cell.
fn blocker_measurements(opt: &ExpOptions) -> Vec<KernelRun> {
    use progxe_core::cells::CellStore;
    use progxe_core::fdom::flexible_model;
    use progxe_core::lookahead::Region;
    use progxe_core::output_grid::OutputGrid;
    use progxe_core::progdetermine::ProgDetermine;
    use progxe_datagen::simplex_band;
    use std::time::Instant;

    let region_counts: &[usize] = if opt.quick {
        &[100, 400]
    } else {
        &[400, 1_600, 6_400]
    };
    let cells_per_dim: u16 = if opt.quick { 16 } else { 32 };
    println!("== Flexible blocker counting: kd-tree index vs naive double loop ==");

    let model = flexible_model(2, simplex_band(2, 0.5)).expect("band is non-empty");
    let fdom = model.as_flexible().expect("flexible by construction");
    let k = fdom.vertex_count();

    let mut runs = Vec::new();
    for &n_regions in region_counts {
        // Deterministic pseudo-random region boxes over a [0,64)² space.
        let mut x: u64 = opt.seed | 1;
        let mut next = |m: f64| -> f64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) as f64 / (1u64 << 31) as f64) * m
        };
        let grid = OutputGrid::new(vec![0.0, 0.0], vec![64.0, 64.0], cells_per_dim);
        let mut regions = Vec::with_capacity(n_regions);
        for id in 0..n_regions as u32 {
            let lo = vec![next(60.0), next(60.0)];
            let hi = vec![lo[0] + next(4.0), lo[1] + next(4.0)];
            let (cell_lo, cell_hi) = grid.box_of(&lo, &hi);
            regions.push(Region {
                id,
                r_part: 0,
                t_part: 0,
                lo,
                hi,
                cell_lo,
                cell_hi,
                n_r: 1,
                n_t: 1,
                guaranteed: true,
            });
        }
        let mut store = CellStore::with_model(grid.clone(), model.clone());
        for r in &regions {
            for c in grid.iter_box(r.cell_lo, r.cell_hi) {
                store.track(c);
            }
        }
        let cells = store.len();

        // Indexed side: ProgDetermine::new projects everything and answers
        // each cell through the kd-tree.
        let t0 = Instant::now();
        let det = ProgDetermine::new(&store, &regions);
        let batched_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Naive side (the retired PR 5 implementation): same projections,
        // then the full regions × cells double loop.
        let t0 = Instant::now();
        let mut buf = Vec::with_capacity(k);
        let mut region_proj = Vec::with_capacity(n_regions * k);
        for r in &regions {
            fdom.project_into(&r.lo, &mut buf);
            region_proj.extend_from_slice(&buf);
        }
        let mut cell_proj = Vec::with_capacity(cells * k);
        let mut corner = Vec::new();
        for (_, cell) in store.iter() {
            grid.upper_corner_into(cell.coord(), &mut corner);
            fdom.project_into(&corner, &mut buf);
            cell_proj.extend_from_slice(&buf);
        }
        let mut naive = vec![0u32; cells];
        for r in 0..n_regions {
            let rp = &region_proj[r * k..(r + 1) * k];
            for (c, counter) in naive.iter_mut().enumerate() {
                let cp = &cell_proj[c * k..(c + 1) * k];
                if rp.iter().zip(cp).all(|(a, b)| a <= b) {
                    *counter += 1;
                }
            }
        }
        let scalar_ms = t0.elapsed().as_secs_f64() * 1e3;

        for (idx, _) in store.iter() {
            assert_eq!(
                det.blockers_of(idx),
                naive[idx as usize],
                "regions={n_regions}: kd-tree count diverged from naive on cell {idx}"
            );
        }

        let naive_ops = (n_regions * cells) as u64;
        runs.push(KernelRun {
            kind: "blocker",
            dims: k,
            n: n_regions,
            queries: cells,
            scalar_ms,
            batched_ms,
            speedup: scalar_ms / batched_ms,
            scalar_mpairs_s: naive_ops as f64 / (scalar_ms * 1e3),
            batched_mpairs_s: naive_ops as f64 / (batched_ms * 1e3),
            index_ops: det.flexible_blocker_ops(),
            naive_ops,
        });
    }
    runs
}

/// The CI gates behind `BENCH_kernels.json`: the batched mask kernel must
/// never lose to the scalar loop; on the full-size run the flagship
/// configuration (d=3, N=10k, anti-correlated) must win by ≥ 1.5×; and the
/// blocker index must do strictly less work than `regions × cells`.
///
/// Wall-clock gates are release-only: the batched win comes from
/// autovectorization, which debug builds don't perform, and the in-process
/// unit test runs in debug under full-suite core contention. The ops-based
/// blocker gate (and every differential equality check in the measurement
/// loops) stays on everywhere. CI enforces the timing gates via the release
/// `figures -- kernels --quick` step.
fn assert_kernel_gates(runs: &[KernelRun], quick: bool) {
    let timing = !cfg!(debug_assertions);
    for run in runs {
        match run.kind {
            "mask" => assert!(
                !timing || run.speedup >= 1.0,
                "batched kernel lost to scalar at d={} n={}: {:.2}x",
                run.dims,
                run.n,
                run.speedup
            ),
            "blocker" => assert!(
                run.index_ops < run.naive_ops,
                "blocker index did {} ops, naive bound is {}",
                run.index_ops,
                run.naive_ops
            ),
            other => unreachable!("unknown kernel run kind {other}"),
        }
    }
    if !quick {
        let flagship = runs
            .iter()
            .find(|r| r.kind == "mask" && r.dims == 3 && r.n == 10_000)
            .expect("full sweep includes d=3 N=10k");
        assert!(
            !timing || flagship.speedup >= 1.5,
            "flagship d=3 N=10k speedup {:.2}x below the 1.5x acceptance bar",
            flagship.speedup
        );
    }
}

/// Renders + persists one set of [`KernelRun`]s (`kernels.csv`,
/// `BENCH_kernels.json`).
fn write_kernel_outputs(opt: &ExpOptions, runs: &[KernelRun]) {
    let mut table = Table::new(&[
        "kind", "dims", "n", "queries", "scalar", "batched", "speedup", "ops", "naive",
    ]);
    let mut rows = Vec::new();
    let mut json_runs = Vec::new();
    for run in runs {
        table.row(vec![
            run.kind.to_string(),
            format!("{}", run.dims),
            format!("{}", run.n),
            format!("{}", run.queries),
            format!("{:.2}ms", run.scalar_ms),
            format!("{:.2}ms", run.batched_ms),
            format!("{:.2}x", run.speedup),
            format!("{}", run.index_ops),
            format!("{}", run.naive_ops),
        ]);
        rows.push(vec![
            run.kind.to_string(),
            format!("{}", run.dims),
            format!("{}", run.n),
            format!("{}", run.queries),
            format!("{:.4}", run.scalar_ms),
            format!("{:.4}", run.batched_ms),
            format!("{:.3}", run.speedup),
            format!("{:.2}", run.scalar_mpairs_s),
            format!("{:.2}", run.batched_mpairs_s),
            format!("{}", run.index_ops),
            format!("{}", run.naive_ops),
        ]);
        json_runs.push(json_object(&[
            ("kind", json_str(run.kind)),
            ("dims", format!("{}", run.dims)),
            ("n", format!("{}", run.n)),
            ("queries", format!("{}", run.queries)),
            ("scalar_ms", format!("{:.4}", run.scalar_ms)),
            ("batched_ms", format!("{:.4}", run.batched_ms)),
            ("speedup", format!("{:.3}", run.speedup)),
            ("scalar_mpairs_s", format!("{:.2}", run.scalar_mpairs_s)),
            ("batched_mpairs_s", format!("{:.2}", run.batched_mpairs_s)),
            ("index_ops", format!("{}", run.index_ops)),
            ("naive_ops", format!("{}", run.naive_ops)),
        ]));
    }
    println!("{}", table.render());
    let path = write_csv(
        &opt.out,
        "kernels",
        &[
            "kind",
            "dims",
            "n",
            "queries",
            "scalar_ms",
            "batched_ms",
            "speedup",
            "scalar_mpairs_s",
            "batched_mpairs_s",
            "index_ops",
            "naive_ops",
        ],
        &rows,
    )
    .unwrap();
    println!("rows written to {}", path.display());
    let json = json_object(&[
        (
            "workload",
            json_object(&[
                ("distribution", json_str("anti-correlated")),
                ("queries", "64".into()),
                ("seed", format!("{}", opt.seed)),
                ("quick", format!("{}", opt.quick)),
            ]),
        ),
        ("runs", format!("[{}]", json_runs.join(", "))),
    ]);
    let path = write_json(&opt.out, "BENCH_kernels", &json).unwrap();
    println!("json written to {}", path.display());
}

/// One measured tracing-overhead run (see [`obs`]).
pub struct ObsRun {
    /// Recorder mode: `"off"` (no recorder attached), `"null"` (a
    /// [`progxe_obs::NullRecorder`] — attached but disabled), or `"ring"`
    /// (full event capture into a [`progxe_obs::RingRecorder`]).
    pub mode: &'static str,
    /// End-to-end wall time of the best (min-wall) repeat.
    pub wall_ms: f64,
    /// First proven-final result latency of that repeat.
    pub first_result_ms: Option<f64>,
    /// Final result count — identical across modes by Principle 1 (tracing
    /// must never change what is emitted).
    pub results: u64,
    /// Events recorded by the ring (0 for off/null).
    pub events: u64,
    /// Events dropped on ring overflow (0 for off/null).
    pub dropped: u64,
}

/// Ring capacity used by the `ring` leg — the recorder default, large
/// enough that the reference workload never overflows (asserted).
pub const OBS_RING_CAPACITY: usize = 64 * 1024;

/// The ring-vs-null overhead bound enforced by [`obs`]: full runs gate at
/// 3%; quick (CI smoke) runs use a generous 25% margin because their
/// millisecond-scale walls are noise-dominated on shared runners.
pub fn obs_overhead_gate(quick: bool) -> f64 {
    if quick {
        0.25
    } else {
        0.03
    }
}

/// Tracing overhead: wall time and first-result latency of the reference
/// progressive workload (anti-correlated, d = 3, σ = 0.1) with the
/// recorder off, attached-but-null, and fully recording into a bounded
/// ring. Writes `obs.csv` and machine-readable `BENCH_obs.json`; CI
/// uploads the JSON next to the threads/ingest/fdom artifacts.
///
/// **Gate**: the `ring` leg's wall time must stay within
/// [`obs_overhead_gate`] of the `null` leg's — panics otherwise, so a
/// regression that makes tracing expensive fails the build instead of
/// silently taxing every traced session.
pub fn obs(opt: &ExpOptions) {
    let runs = obs_measurements(opt);
    let gate = obs_overhead_gate(opt.quick);
    assert_obs_overhead(&runs, gate);
    write_obs_outputs(opt, &runs, gate);
}

fn obs_wall(runs: &[ObsRun], mode: &str) -> f64 {
    runs.iter()
        .find(|r| r.mode == mode)
        .map(|r| r.wall_ms)
        .expect("mode measured")
}

fn assert_obs_overhead(runs: &[ObsRun], gate: f64) {
    let null = obs_wall(runs, "null");
    let ring = obs_wall(runs, "ring");
    let overhead = (ring - null) / null;
    assert!(
        overhead <= gate,
        "ring-recorder overhead {:.1}% exceeds the {:.0}% gate \
         (null={null:.2}ms, ring={ring:.2}ms)",
        overhead * 100.0,
        gate * 100.0,
    );
}

/// The measured core of [`obs`], separated so tests can assert on the
/// numbers (modes agree on results; the ring never drops) without
/// re-running the sweep for the writer.
pub fn obs_measurements(opt: &ExpOptions) -> Vec<ObsRun> {
    use progxe_obs::{NullRecorder, Recorder, RingRecorder};
    use std::sync::Arc;

    let n = opt.pick_n(10_000);
    let dims = opt.pick_dims(3);
    let sigma = opt.sigma.unwrap_or(0.1);
    let repeats = if opt.quick { 3 } else { 5 };
    println!(
        "== Tracing overhead: recorder off / null / ring \
         (anti-correlated, N={n}, d={dims}, sigma={sigma}, min of {repeats}) =="
    );
    let w = workload(n, dims, Distribution::AntiCorrelated, sigma, opt.seed);
    let maps = MapSet::pairwise_sum(dims, Preference::all_lowest(dims));
    let config = default_config_for(dims, sigma);
    let r = SourceView::new(&w.r.attrs, &w.r.join_keys).expect("parallel arrays");
    let t = SourceView::new(&w.t.attrs, &w.t.join_keys).expect("parallel arrays");

    let run_once = |recorder: Option<Arc<dyn Recorder>>| {
        let mut session = ProgXe::new(config.clone())
            .with_recorder_opt(recorder)
            .open(&r, &t, &maps)
            .expect("valid configuration");
        let mut first: Option<Duration> = None;
        while let Some(event) = session.next_batch() {
            if first.is_none() && !event.tuples.is_empty() {
                first = Some(event.elapsed);
            }
        }
        (first, session.finish())
    };

    // Warm-up, discarded: first-touch page faults and lazy allocations
    // must not land on whichever mode happens to run first.
    let _ = run_once(None);

    let mut runs = Vec::new();
    for mode in ["off", "null", "ring"] {
        let mut best: Option<ObsRun> = None;
        for _ in 0..repeats {
            let ring =
                (mode == "ring").then(|| Arc::new(RingRecorder::with_capacity(OBS_RING_CAPACITY)));
            let recorder: Option<Arc<dyn Recorder>> = match mode {
                "off" => None,
                "null" => Some(Arc::new(NullRecorder)),
                _ => ring.clone().map(|r| r as Arc<dyn Recorder>),
            };
            let (first, stats) = run_once(recorder);
            assert!(!stats.cancelled);
            let run = ObsRun {
                mode,
                wall_ms: stats.total_time.as_secs_f64() * 1e3,
                first_result_ms: first.map(|d| d.as_secs_f64() * 1e3),
                results: stats.results_emitted,
                events: ring.as_ref().map(|r| r.recorded()).unwrap_or(0),
                dropped: ring.as_ref().map(|r| r.dropped()).unwrap_or(0),
            };
            if best.as_ref().is_none_or(|b| run.wall_ms < b.wall_ms) {
                best = Some(run);
            }
        }
        runs.push(best.expect("repeats >= 1"));
    }
    runs
}

/// Renders + persists one set of [`ObsRun`]s (`obs.csv`,
/// `BENCH_obs.json`).
fn write_obs_outputs(opt: &ExpOptions, runs: &[ObsRun], gate: f64) {
    let mut table = Table::new(&["mode", "wall", "first", "results", "events", "dropped"]);
    let mut rows = Vec::new();
    let mut json_runs = Vec::new();
    for run in runs {
        table.row(vec![
            run.mode.to_string(),
            format!("{:.1}ms", run.wall_ms),
            run.first_result_ms
                .map(|v| format!("{v:.1}ms"))
                .unwrap_or_else(|| "-".into()),
            format!("{}", run.results),
            format!("{}", run.events),
            format!("{}", run.dropped),
        ]);
        rows.push(vec![
            run.mode.to_string(),
            format!("{:.3}", run.wall_ms),
            run.first_result_ms
                .map(|v| format!("{v:.3}"))
                .unwrap_or_default(),
            format!("{}", run.results),
            format!("{}", run.events),
            format!("{}", run.dropped),
        ]);
        json_runs.push(json_object(&[
            ("mode", json_str(run.mode)),
            ("wall_ms", format!("{:.3}", run.wall_ms)),
            (
                "first_result_ms",
                run.first_result_ms
                    .map(|v| format!("{v:.3}"))
                    .unwrap_or_else(|| "null".into()),
            ),
            ("results", format!("{}", run.results)),
            ("events", format!("{}", run.events)),
            ("dropped", format!("{}", run.dropped)),
        ]));
    }
    println!("{}", table.render());
    let null = obs_wall(runs, "null");
    let off = obs_wall(runs, "off");
    let ring = obs_wall(runs, "ring");
    let ring_pct = (ring - null) / null * 100.0;
    let null_pct = (null - off) / off * 100.0;
    println!(
        "ring-vs-null overhead: {ring_pct:+.2}% (gate {:.0}%)",
        gate * 100.0
    );
    let path = write_csv(
        &opt.out,
        "obs",
        &[
            "mode", "wall_ms", "first_ms", "results", "events", "dropped",
        ],
        &rows,
    )
    .unwrap();
    println!("rows written to {}", path.display());
    let json = json_object(&[
        (
            "workload",
            json_object(&[
                ("distribution", json_str("anti-correlated")),
                ("n", format!("{}", opt.pick_n(10_000))),
                ("dims", format!("{}", opt.pick_dims(3))),
                ("sigma", format!("{}", opt.sigma.unwrap_or(0.1))),
                ("seed", format!("{}", opt.seed)),
                ("ring_capacity", format!("{OBS_RING_CAPACITY}")),
            ]),
        ),
        (
            "overhead",
            json_object(&[
                ("gate_pct", format!("{:.1}", gate * 100.0)),
                ("ring_vs_null_pct", format!("{ring_pct:.2}")),
                ("null_vs_off_pct", format!("{null_pct:.2}")),
            ]),
        ),
        ("runs", format!("[{}]", json_runs.join(", "))),
    ]);
    let path = write_json(&opt.out, "BENCH_obs", &json).unwrap();
    println!("json written to {}", path.display());
}

/// Section III-B: the comparable-cell bound. For each new tuple, dominance
/// comparisons are confined to at most `k^d − (k−1)^d` of the `k^d` output
/// cells; this experiment reports the *measured* average candidate cells
/// per insertion against both bounds.
pub fn cellbound(opt: &ExpOptions) {
    let n = opt.pick_n(2000);
    let sigma = opt.sigma.unwrap_or(0.01);
    println!("== Section III-B: comparable-cell bound (N={n}, sigma={sigma}) ==");
    let mut table = Table::new(&[
        "d",
        "k",
        "cells k^d",
        "bound k^d-(k-1)^d",
        "measured avg",
        "measured max",
    ]);
    let mut rows = Vec::new();
    for dims in [2usize, 3, 4] {
        let w = workload(n, dims, Distribution::Independent, sigma, opt.seed);
        let config = default_config_for(dims, sigma);
        let k = config.output_cells_per_dim as u64;
        let maps = MapSet::pairwise_sum(dims, Preference::all_lowest(dims));
        let r = SourceView::new(&w.r.attrs, &w.r.join_keys).unwrap();
        let t = SourceView::new(&w.t.attrs, &w.t.join_keys).unwrap();
        let mut sink = CountSink::default();
        let stats = ProgXe::new(config).run(&r, &t, &maps, &mut sink).unwrap();
        let attempts = stats.tuples_inserted + stats.tuples_rejected_dominated;
        let avg = if attempts == 0 {
            0.0
        } else {
            stats.comparable_cells_visited as f64 / attempts as f64
        };
        let naive = k.pow(dims as u32);
        let bound = naive - (k - 1).pow(dims as u32);
        table.row(vec![
            format!("{dims}"),
            format!("{k}"),
            format!("{naive}"),
            format!("{bound}"),
            format!("{avg:.1}"),
            format!("{}", stats.comparable_cells_max),
        ]);
        rows.push(vec![
            format!("{dims}"),
            format!("{k}"),
            format!("{naive}"),
            format!("{bound}"),
            format!("{avg:.3}"),
            format!("{}", stats.comparable_cells_max),
        ]);
    }
    println!("{}", table.render());
    let path = write_csv(
        &opt.out,
        "cellbound",
        &[
            "d",
            "k",
            "naive_cells",
            "bound",
            "measured_avg",
            "measured_max",
        ],
        &rows,
    )
    .unwrap();
    println!("rows written to {}", path.display());
}

/// Section VI-B's δ remark: sensitivity to grid granularity (input
/// partitions per dimension × output cells per dimension).
pub fn ablate_delta(opt: &ExpOptions) {
    let n = opt.pick_n(2000);
    let dims = opt.pick_dims(3);
    let sigma = opt.sigma.unwrap_or(0.01);
    println!("== Ablation: grid granularity δ (N={n}, d={dims}, sigma={sigma}) ==");
    let w = workload(n, dims, Distribution::AntiCorrelated, sigma, opt.seed);
    let maps = MapSet::pairwise_sum(dims, Preference::all_lowest(dims));
    let r = SourceView::new(&w.r.attrs, &w.r.join_keys).unwrap();
    let t = SourceView::new(&w.t.attrs, &w.t.join_keys).unwrap();
    let mut table = Table::new(&[
        "p (input)",
        "k (output)",
        "regions",
        "cells",
        "total",
        "t50",
    ]);
    let mut rows = Vec::new();
    for p in [1usize, 2, 3, 4] {
        for k in [8usize, 16, 32] {
            let config = default_config_for(dims, sigma)
                .with_input_partitions(p)
                .with_output_cells(k);
            let mut sink = progxe_core::sink::ProgressSink::new();
            let stats = ProgXe::new(config).run(&r, &t, &maps, &mut sink).unwrap();
            let half = sink
                .records
                .iter()
                .find(|rec| rec.cumulative * 2 >= sink.total())
                .map(|rec| rec.elapsed);
            table.row(vec![
                format!("{p}"),
                format!("{k}"),
                format!("{}", stats.regions_created),
                format!("{}", stats.cells_tracked),
                fmt_duration(stats.total_time),
                fmt_opt_duration(half),
            ]);
            rows.push(vec![
                format!("{p}"),
                format!("{k}"),
                format!("{}", stats.regions_created),
                format!("{}", stats.cells_tracked),
                format!("{}", stats.total_time.as_micros()),
                half.map(|d| d.as_micros().to_string()).unwrap_or_default(),
            ]);
        }
    }
    println!("{}", table.render());
    let path = write_csv(
        &opt.out,
        "ablate_delta",
        &["p", "k", "regions", "cells", "total_us", "t50_us"],
        &rows,
    )
    .unwrap();
    println!("rows written to {}", path.display());
}

/// Section VI-B's overhead claim: "the overhead incurred due to ordering is
/// insignificant but has good progressiveness benefits". Compares ProgOrder
/// against random and FIFO ordering on identical workloads.
pub fn ablate_order(opt: &ExpOptions) {
    let n = opt.pick_n(2500);
    let dims = opt.pick_dims(4);
    let sigma = opt.sigma.unwrap_or(0.001);
    println!("== Ablation: ordering policy (N={n}, d={dims}, sigma={sigma}) ==");
    let mut table = Table::new(&["distribution", "policy", "results", "first", "t50", "total"]);
    let mut rows = Vec::new();
    for dist in Distribution::ALL {
        let w = workload(n, dims, dist, sigma, opt.seed);
        let maps = MapSet::pairwise_sum(dims, Preference::all_lowest(dims));
        let r = SourceView::new(&w.r.attrs, &w.r.join_keys).unwrap();
        let t = SourceView::new(&w.t.attrs, &w.t.join_keys).unwrap();
        for (name, ordering) in [
            ("ProgOrder", OrderingPolicy::ProgOrder),
            ("Random", OrderingPolicy::Random { seed: 0x5EED }),
            ("FIFO", OrderingPolicy::Fifo),
        ] {
            let config = default_config_for(dims, sigma).with_ordering(ordering);
            let mut sink = progxe_core::sink::ProgressSink::new();
            let stats = ProgXe::new(config).run(&r, &t, &maps, &mut sink).unwrap();
            let run = RunResult {
                algo: name,
                results: sink.total(),
                records: sink.records,
                total_time: stats.total_time,
                false_positives: 0,
            };
            table.row(vec![
                dist.name().into(),
                name.into(),
                format!("{}", run.results),
                fmt_opt_duration(run.first_result()),
                fmt_opt_duration(run.time_to_fraction(0.5)),
                fmt_duration(run.total_time),
            ]);
            rows.push(vec![
                dist.name().to_string(),
                name.to_string(),
                format!("{}", run.results),
                run.first_result()
                    .map(|d| d.as_micros().to_string())
                    .unwrap_or_default(),
                run.time_to_fraction(0.5)
                    .map(|d| d.as_micros().to_string())
                    .unwrap_or_default(),
                format!("{}", run.total_time.as_micros()),
            ]);
        }
    }
    println!("{}", table.render());
    let path = write_csv(
        &opt.out,
        "ablate_order",
        &[
            "distribution",
            "policy",
            "results",
            "first_us",
            "t50_us",
            "total_us",
        ],
        &rows,
    )
    .unwrap();
    println!("rows written to {}", path.display());
}

/// Section VII's claim, quantified: SSMJ's batch-1 results are not final
/// under mapping functions. Counts false positives across distributions
/// and dimensionalities.
pub fn ssmj_soundness(opt: &ExpOptions) {
    let n = opt.pick_n(1500);
    let sigma = opt.sigma.unwrap_or(0.01);
    println!("== SSMJ batch-1 soundness under maps (N={n}, sigma={sigma}) ==");
    let mut table = Table::new(&["distribution", "d", "batch1", "false positives", "final"]);
    let mut rows = Vec::new();
    for dist in Distribution::ALL {
        for dims in [2usize, 3, 4] {
            let w = workload(n, dims, dist, sigma, opt.seed);
            let run = run_algo(AlgoKind::Ssmj, &w);
            let batch1 = run.records.first().map(|r| r.cumulative).unwrap_or(0);
            table.row(vec![
                dist.name().into(),
                format!("{dims}"),
                format!("{batch1}"),
                format!("{}", run.false_positives),
                format!("{}", run.results - run.false_positives),
            ]);
            rows.push(vec![
                dist.name().to_string(),
                format!("{dims}"),
                format!("{batch1}"),
                format!("{}", run.false_positives),
                format!("{}", run.results - run.false_positives),
            ]);
        }
    }
    println!("{}", table.render());
    let path = write_csv(
        &opt.out,
        "ssmj_soundness",
        &["distribution", "d", "batch1", "false_positives", "final"],
        &rows,
    )
    .unwrap();
    println!("rows written to {}", path.display());
}

/// One measured serving load point (see [`serving`]).
pub struct ServingRun {
    /// Simulated concurrent clients, each running one query over its own
    /// TCP connection.
    pub clients: usize,
    /// Queries the server completed successfully.
    pub queries_ok: u64,
    /// Connections shed by admission control (0 when the cap fits the
    /// client count, as in this sweep).
    pub rejected: u64,
    /// Wall-clock duration of the whole load point.
    pub elapsed_ms: f64,
    /// Completed queries per second over the load point.
    pub qps: f64,
    /// Median client-measured time-to-first-result.
    pub first_p50_ms: f64,
    /// 99th-percentile client-measured time-to-first-result.
    pub first_p99_ms: f64,
}

/// Serving load generator: spins up the TCP server from `crates/server`
/// over a synthetic anti-correlated catalog, then hits it with 100–1000
/// simulated clients (one OS thread + one connection each, one query per
/// client) and reports QPS plus client-observed p50/p99 time-to-first-
/// result. A second sweep measures protocol-v2 subscriptions: standing
/// streaming queries fed over the wire, reporting push-to-update latency
/// at 100+ concurrent subscribers. Writes `serving.csv`,
/// `serving_subscriptions.csv`, and machine-readable `BENCH_serving.json`
/// (one-shot `points` plus a `subscriptions` section); CI runs the
/// `--quick` points (100 clients, 100 subscribers) as a smoke and uploads
/// the JSON next to the other BENCH artifacts.
pub fn serving(opt: &ExpOptions) {
    let runs = serving_measurements(opt);
    let subs = subscription_measurements(opt);
    write_serving_outputs(opt, &runs, &subs);
}

/// The measured core of [`serving`] at the default sweep sizes: 100
/// clients in `--quick` mode, 100/250/500/1000 otherwise.
pub fn serving_measurements(opt: &ExpOptions) -> Vec<ServingRun> {
    let sweep: &[usize] = if opt.quick {
        &[100]
    } else {
        &[100, 250, 500, 1000]
    };
    let rows = opt.pick_n(800); // --quick shrinks this to 80 via pick_n
    let dims = opt.pick_dims(2);
    serving_sweep(opt, sweep, rows, dims)
}

/// The measured subscription core of [`serving`]: 100 subscribers in
/// `--quick` mode, 100/250 otherwise, each pushing `pick_n(200)` rows per
/// source in 25-row batches.
pub fn subscription_measurements(opt: &ExpOptions) -> Vec<SubscriptionRun> {
    let sweep: &[usize] = if opt.quick { &[100] } else { &[100, 250] };
    let rows = opt.pick_n(200);
    let dims = opt.pick_dims(2);
    subscription_sweep(opt, sweep, rows, dims, 25)
}

/// Runs one load point per entry in `sweep` against a fresh server (port
/// 0, session cap = client count, 2 engine worker threads shared by every
/// session). Split from [`serving_measurements`] so tests can drive a tiny
/// sweep without the 100-client default. Panics — failing CI — on any
/// connection, query, or cancellation anomaly.
pub fn serving_sweep(
    opt: &ExpOptions,
    sweep: &[usize],
    rows: usize,
    dims: usize,
) -> Vec<ServingRun> {
    use progxe_query::{Engine, QueryRunner};
    use progxe_server::{synthetic, Server, ServerConfig};
    use std::time::Instant;

    println!(
        "== Serving: QPS + first-result latency vs concurrent clients \
         (anti-correlated, N={rows}, d={dims}, seed={}) ==",
        opt.seed
    );
    let sql = std::sync::Arc::new(synthetic::query_sql(dims));
    let mut out = Vec::new();
    for &clients in sweep {
        let runner = QueryRunner::new(synthetic::catalog(rows, dims, opt.seed));
        let handle = Server::start(
            runner,
            Engine::progxe_threads(2),
            ServerConfig {
                max_sessions: clients,
            },
            "127.0.0.1:0",
        )
        .expect("bind port 0");
        let addr = handle.addr();

        let started = Instant::now();
        let workers: Vec<_> = (0..clients)
            .map(|_| {
                let sql = std::sync::Arc::clone(&sql);
                std::thread::spawn(move || {
                    let mut client =
                        progxe_server::Client::connect(addr).expect("admitted under the cap");
                    let outcome = client.run_query(&sql).expect("query frame exchange");
                    assert!(
                        outcome.error.is_none(),
                        "server error under load: {:?}",
                        outcome.error
                    );
                    let done = outcome.done.expect("terminal Done frame");
                    assert!(
                        !done.cancelled,
                        "no client disconnected, yet a run cancelled"
                    );
                    outcome
                        .first_result
                        .expect("anti-correlated workloads always emit results")
                })
            })
            .collect();
        let mut firsts_ms: Vec<f64> = workers
            .into_iter()
            .map(|w| w.join().expect("client thread").as_secs_f64() * 1e3)
            .collect();
        let elapsed = started.elapsed();
        firsts_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

        let metrics = handle.metrics();
        let queries_ok = metrics.queries_ok();
        let rejected = metrics.rejected();
        assert_eq!(
            metrics.queries_cancelled(),
            0,
            "load generator never cancels"
        );
        handle.shutdown();
        assert_eq!(queries_ok, clients as u64, "every client's query completes");

        let run = ServingRun {
            clients,
            queries_ok,
            rejected,
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            qps: queries_ok as f64 / elapsed.as_secs_f64(),
            first_p50_ms: percentile(&firsts_ms, 0.50),
            first_p99_ms: percentile(&firsts_ms, 0.99),
        };
        println!(
            "{clients:>5} clients: {:.0} qps, first result p50 {:.1}ms / p99 {:.1}ms \
             ({:.0}ms wall)",
            run.qps, run.first_p50_ms, run.first_p99_ms, run.elapsed_ms
        );
        out.push(run);
    }
    out
}

/// One measured subscription load point (see [`serving`]).
pub struct SubscriptionRun {
    /// Concurrent subscribers, each holding one standing streaming query
    /// over its own TCP connection and pushing its own arrival feed.
    pub subscribers: usize,
    /// Push frames sent across all subscribers.
    pub pushes: u64,
    /// `Update` frames received across all subscribers.
    pub updates: u64,
    /// Result tuples received across all subscribers.
    pub results: u64,
    /// Wall-clock duration of the whole load point.
    pub elapsed_ms: f64,
    /// Median push-to-update latency: time from writing a `Push` frame to
    /// receiving an `Update` it unlocked.
    pub update_p50_ms: f64,
    /// 99th-percentile push-to-update latency.
    pub update_p99_ms: f64,
}

/// Runs one subscription load point per entry in `sweep`: every
/// subscriber connects v2, opens a standing query, and replays a
/// seed-distinct [`progxe_server::synthetic::arrival_feed`] of `rows` rows per source in
/// `batch`-row pushes, draining `Update`s on a second thread (the
/// [`progxe_server::Client::into_split`] shape). Push-to-update latency
/// attributes each update to the most recent push on its connection.
/// Panics — failing CI — on any connection, frame, or cancellation
/// anomaly.
pub fn subscription_sweep(
    opt: &ExpOptions,
    sweep: &[usize],
    rows: usize,
    dims: usize,
    batch: usize,
) -> Vec<SubscriptionRun> {
    use progxe_query::{Engine, QueryRunner};
    use progxe_server::{synthetic, Client, Server, ServerConfig, ServerFrame};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    println!(
        "== Serving: push-to-update latency vs concurrent subscribers \
         (anti-correlated feeds, {rows} rows/source, d={dims}, batch={batch}, seed={}) ==",
        opt.seed
    );
    let sql = Arc::new(synthetic::query_sql(dims));
    let mut out = Vec::new();
    for &subscribers in sweep {
        let runner = QueryRunner::new(synthetic::streaming_catalog(60, dims, opt.seed));
        let handle = Server::start(
            runner,
            Engine::progxe_threads(2),
            ServerConfig {
                max_sessions: subscribers,
            },
            "127.0.0.1:0",
        )
        .expect("bind port 0");
        let addr = handle.addr();

        let started = Instant::now();
        let seed = opt.seed;
        let workers: Vec<_> = (0..subscribers)
            .map(|i| {
                let sql = Arc::clone(&sql);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("admitted under the cap");
                    client.subscribe(0, &sql).expect("subscribe");
                    match client.next_server_frame().expect("frame") {
                        ServerFrame::SubAccepted { .. } => {}
                        other => panic!("expected SubAccepted, got {other:?}"),
                    }
                    let feed = synthetic::arrival_feed(0, rows, dims, seed ^ (i as u64 + 1), batch);
                    let (mut writer, mut reader) = client.into_split();

                    // Reader thread drains until SubDone, attributing each
                    // update to the most recent push (nanos since `origin`,
                    // published through the atomic just before the write).
                    let origin = Instant::now();
                    let last_push = Arc::new(AtomicU64::new(0));
                    let observed = Arc::clone(&last_push);
                    let drain = std::thread::spawn(move || {
                        let mut latencies_ms = Vec::new();
                        let mut updates = 0u64;
                        let mut results = 0u64;
                        loop {
                            match reader.next_server_frame().expect("frame") {
                                ServerFrame::Update { batch, .. } => {
                                    let now = origin.elapsed().as_nanos() as u64;
                                    let sent = observed.load(Ordering::Acquire);
                                    latencies_ms.push(now.saturating_sub(sent) as f64 / 1e6);
                                    updates += 1;
                                    results += batch.tuples.len() as u64;
                                }
                                ServerFrame::SubDone { done, .. } => {
                                    assert!(!done.cancelled, "fully fed subs complete");
                                    return (latencies_ms, updates, results);
                                }
                                other => panic!("expected Update or SubDone, got {other:?}"),
                            }
                        }
                    });
                    let pushes = feed.len() as u64;
                    for frame in &feed {
                        last_push.store(origin.elapsed().as_nanos() as u64, Ordering::Release);
                        writer
                            .send(&progxe_server::ClientFrame::Push(frame.clone()))
                            .expect("push");
                    }
                    let (latencies_ms, updates, results) = drain.join().expect("reader thread");
                    (pushes, latencies_ms, updates, results)
                })
            })
            .collect();
        let mut pushes = 0u64;
        let mut updates = 0u64;
        let mut results = 0u64;
        let mut latencies_ms: Vec<f64> = Vec::new();
        for worker in workers {
            let (p, l, u, r) = worker.join().expect("subscriber thread");
            pushes += p;
            updates += u;
            results += r;
            latencies_ms.extend(l);
        }
        let elapsed = started.elapsed();
        latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

        let metrics = handle.metrics();
        assert_eq!(
            metrics.queries_ok(),
            subscribers as u64,
            "every subscription ran to completion"
        );
        assert_eq!(
            metrics.queries_cancelled(),
            0,
            "the load generator never cancels"
        );
        handle.shutdown();
        assert!(
            !latencies_ms.is_empty(),
            "anti-correlated feeds emit updates"
        );

        let run = SubscriptionRun {
            subscribers,
            pushes,
            updates,
            results,
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            update_p50_ms: percentile(&latencies_ms, 0.50),
            update_p99_ms: percentile(&latencies_ms, 0.99),
        };
        println!(
            "{subscribers:>5} subscribers: {} pushes -> {} updates ({} results), \
             push-to-update p50 {:.1}ms / p99 {:.1}ms ({:.0}ms wall)",
            run.pushes,
            run.updates,
            run.results,
            run.update_p50_ms,
            run.update_p99_ms,
            run.elapsed_ms
        );
        out.push(run);
    }
    out
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Renders + persists one set of [`ServingRun`]s and [`SubscriptionRun`]s
/// (`serving.csv`, `serving_subscriptions.csv`, `BENCH_serving.json`).
/// Split from [`serving`] so tests can assert on the measurements and
/// then exercise the writer without re-running the sweeps.
fn write_serving_outputs(opt: &ExpOptions, runs: &[ServingRun], sub_runs: &[SubscriptionRun]) {
    let mut table = Table::new(&["clients", "qps", "first p50", "first p99", "wall"]);
    let mut rows = Vec::new();
    let mut json_points = Vec::new();
    for run in runs {
        table.row(vec![
            format!("{}", run.clients),
            format!("{:.0}", run.qps),
            format!("{:.1}ms", run.first_p50_ms),
            format!("{:.1}ms", run.first_p99_ms),
            format!("{:.0}ms", run.elapsed_ms),
        ]);
        rows.push(vec![
            format!("{}", run.clients),
            format!("{}", run.queries_ok),
            format!("{}", run.rejected),
            format!("{:.3}", run.elapsed_ms),
            format!("{:.3}", run.qps),
            format!("{:.3}", run.first_p50_ms),
            format!("{:.3}", run.first_p99_ms),
        ]);
        json_points.push(json_object(&[
            ("clients", format!("{}", run.clients)),
            ("queries_ok", format!("{}", run.queries_ok)),
            ("rejected", format!("{}", run.rejected)),
            ("elapsed_ms", format!("{:.3}", run.elapsed_ms)),
            ("qps", format!("{:.3}", run.qps)),
            ("first_result_p50_ms", format!("{:.3}", run.first_p50_ms)),
            ("first_result_p99_ms", format!("{:.3}", run.first_p99_ms)),
        ]));
    }
    println!("{}", table.render());
    let path = write_csv(
        &opt.out,
        "serving",
        &[
            "clients",
            "queries_ok",
            "rejected",
            "elapsed_ms",
            "qps",
            "first_p50_ms",
            "first_p99_ms",
        ],
        &rows,
    )
    .unwrap();
    println!("rows written to {}", path.display());

    let mut sub_table = Table::new(&[
        "subscribers",
        "pushes",
        "updates",
        "update p50",
        "update p99",
        "wall",
    ]);
    let mut sub_rows = Vec::new();
    let mut sub_json_points = Vec::new();
    for run in sub_runs {
        sub_table.row(vec![
            format!("{}", run.subscribers),
            format!("{}", run.pushes),
            format!("{}", run.updates),
            format!("{:.1}ms", run.update_p50_ms),
            format!("{:.1}ms", run.update_p99_ms),
            format!("{:.0}ms", run.elapsed_ms),
        ]);
        sub_rows.push(vec![
            format!("{}", run.subscribers),
            format!("{}", run.pushes),
            format!("{}", run.updates),
            format!("{}", run.results),
            format!("{:.3}", run.elapsed_ms),
            format!("{:.3}", run.update_p50_ms),
            format!("{:.3}", run.update_p99_ms),
        ]);
        sub_json_points.push(json_object(&[
            ("subscribers", format!("{}", run.subscribers)),
            ("pushes", format!("{}", run.pushes)),
            ("updates", format!("{}", run.updates)),
            ("results", format!("{}", run.results)),
            ("elapsed_ms", format!("{:.3}", run.elapsed_ms)),
            ("push_to_update_p50_ms", format!("{:.3}", run.update_p50_ms)),
            ("push_to_update_p99_ms", format!("{:.3}", run.update_p99_ms)),
        ]));
    }
    if !sub_runs.is_empty() {
        println!("{}", sub_table.render());
        let path = write_csv(
            &opt.out,
            "serving_subscriptions",
            &[
                "subscribers",
                "pushes",
                "updates",
                "results",
                "elapsed_ms",
                "update_p50_ms",
                "update_p99_ms",
            ],
            &sub_rows,
        )
        .unwrap();
        println!("rows written to {}", path.display());
    }

    let json = json_object(&[
        (
            "workload",
            json_object(&[
                ("distribution", json_str("anti-correlated")),
                ("n", format!("{}", opt.pick_n(800))),
                ("dims", format!("{}", opt.pick_dims(2))),
                ("seed", format!("{}", opt.seed)),
            ]),
        ),
        ("engine_threads", "2".into()),
        ("points", format!("[{}]", json_points.join(", "))),
        ("subscriptions", format!("[{}]", sub_json_points.join(", "))),
    ]);
    let path = write_json(&opt.out, "BENCH_serving", &json).unwrap();
    println!("json written to {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts(dir: &str) -> ExpOptions {
        ExpOptions {
            quick: true,
            out: std::env::temp_dir().join(dir),
            ..ExpOptions::default()
        }
    }

    #[test]
    fn fig10_prog_quick_writes_csv() {
        let opt = quick_opts("progxe-fig10");
        fig10_prog(&opt);
        assert!(opt.out.join("fig10_prog_series.csv").exists());
    }

    #[test]
    fn fig12_quick_runs() {
        let opt = quick_opts("progxe-fig12");
        fig12(&opt);
        assert!(opt.out.join("fig12_series.csv").exists());
    }

    #[test]
    fn ssmj_soundness_quick_runs() {
        let opt = quick_opts("progxe-ssmj");
        ssmj_soundness(&opt);
        assert!(opt.out.join("ssmj_soundness.csv").exists());
    }

    #[test]
    fn cellbound_quick_runs() {
        let opt = quick_opts("progxe-cellbound");
        cellbound(&opt);
        assert!(opt.out.join("cellbound.csv").exists());
    }

    #[test]
    fn serving_sweep_small_point_yields_sane_latencies_and_artifacts() {
        let opt = quick_opts("progxe-serving");
        // Tiny sweep (4 clients, 120-row tables) so the debug-mode test
        // stays fast; the CI smoke runs the real 100-client point via
        // `figures serving --quick` in release mode.
        let runs = serving_sweep(&opt, &[4], 120, 2);
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        assert_eq!(run.queries_ok, 4);
        assert_eq!(run.rejected, 0);
        assert!(run.qps > 0.0);
        assert!(
            run.first_p99_ms >= run.first_p50_ms,
            "p99 {} must dominate p50 {}",
            run.first_p99_ms,
            run.first_p50_ms
        );
        // Tiny subscription point for the same reason (8 subscribers, 60
        // rows/source); the CI smoke runs 100 via `figures serving --quick`.
        let sub_runs = subscription_sweep(&opt, &[8], 60, 2, 20);
        assert_eq!(sub_runs.len(), 1);
        let sub = &sub_runs[0];
        assert_eq!(sub.subscribers, 8);
        assert!(sub.updates > 0, "feeds must unlock updates");
        assert!(sub.results > 0, "anti-correlated feeds emit results");
        assert!(
            sub.update_p99_ms >= sub.update_p50_ms,
            "p99 {} must dominate p50 {}",
            sub.update_p99_ms,
            sub.update_p50_ms
        );
        write_serving_outputs(&opt, &runs, &sub_runs);
        assert!(opt.out.join("serving.csv").exists());
        assert!(opt.out.join("serving_subscriptions.csv").exists());
        let json = std::fs::read_to_string(opt.out.join("BENCH_serving.json")).unwrap();
        for key in [
            "\"clients\"",
            "\"qps\"",
            "\"first_result_p50_ms\"",
            "\"first_result_p99_ms\"",
            "\"points\"",
            "\"subscriptions\"",
            "\"subscribers\"",
            "\"push_to_update_p50_ms\"",
            "\"push_to_update_p99_ms\"",
        ] {
            assert!(
                json.contains(key),
                "BENCH_serving.json missing {key}: {json}"
            );
        }
    }

    #[test]
    fn ingest_quick_trickle_beats_the_batch_engine() {
        let opt = quick_opts("progxe-ingest");
        // The acceptance criterion behind `BENCH_ingest.json`: on the
        // trickle workload (sorted small batches + watermarks) the
        // streaming engine's first result must land strictly before the
        // batch engine's, which cannot start until the last batch arrived
        // — on BOTH backends. Asserted on the measurements; the writer
        // then runs on the same runs (no second sweep).
        let runs = ingest_measurements(&opt);
        let mut trickle_seen = 0;
        for run in &runs {
            assert!(
                run.results > 0,
                "{}/{} emitted nothing",
                run.schedule,
                run.backend
            );
            if run.schedule == "trickle" {
                trickle_seen += 1;
                let first = run
                    .first_result_ms
                    .expect("trickle run must produce results");
                assert!(
                    first < run.batch_first_result_ms,
                    "{}: streaming first {first:.3}ms not below batch {:.3}ms",
                    run.backend,
                    run.batch_first_result_ms
                );
                assert!(
                    first < run.arrival_end_ms,
                    "{}: trickle first result should precede full arrival",
                    run.backend
                );
            }
        }
        assert!(trickle_seen >= 2, "both backends must run the trickle leg");

        write_ingest_outputs(&opt, &runs);
        assert!(opt.out.join("ingest.csv").exists());
        let json = std::fs::read_to_string(opt.out.join("BENCH_ingest.json")).unwrap();
        for key in [
            "\"workload\"",
            "\"schedule\"",
            "\"interval_ms\"",
            "\"first_result_ms\"",
            "\"batch_first_result_ms\"",
            "\"trickle\"",
            "\"uniform-shuffle\"",
            "\"pooled\"",
        ] {
            assert!(json.contains(key), "BENCH_ingest.json missing {key}");
        }
    }

    #[test]
    fn kernels_quick_passes_gates_and_writes_json() {
        let opt = quick_opts("progxe-kernels");
        let runs = kernel_measurements(&opt);
        assert_kernel_gates(&runs, true);
        assert!(runs.iter().any(|r| r.kind == "mask"), "mask sweep missing");
        assert!(
            runs.iter().any(|r| r.kind == "blocker"),
            "blocker sweep missing"
        );
        write_kernel_outputs(&opt, &runs);
        assert!(opt.out.join("kernels.csv").exists());
        let json = std::fs::read_to_string(opt.out.join("BENCH_kernels.json")).unwrap();
        for key in [
            "\"kind\"",
            "\"speedup\"",
            "\"batched_mpairs_s\"",
            "\"index_ops\"",
            "\"naive_ops\"",
            "\"mask\"",
            "\"blocker\"",
        ] {
            assert!(json.contains(key), "BENCH_kernels.json missing {key}");
        }
    }

    #[test]
    fn fdom_quick_shrinks_monotonically_and_writes_json() {
        let opt = quick_opts("progxe-fdom");
        let runs = fdom_measurements(&opt);
        for dist in Distribution::ALL {
            let of_dist: Vec<&FdomRun> = runs
                .iter()
                .filter(|r| r.distribution == dist.name())
                .collect();
            let pareto = of_dist
                .iter()
                .find(|r| r.tightness.is_none())
                .expect("pareto baseline present");
            assert!(pareto.results > 0, "{dist:?}: empty baseline");
            // t = 0 is the whole simplex: identical to Pareto.
            let loose = of_dist
                .iter()
                .find(|r| r.tightness == Some(0.0))
                .expect("t=0 leg present");
            assert_eq!(
                loose.results, pareto.results,
                "{dist:?}: unconstrained family must equal Pareto"
            );
            assert_eq!(loose.fdom_filtered, 0, "{dist:?}: nothing to filter at t=0");
            // Nested families: results non-increasing along the sweep.
            let mut last = u64::MAX;
            for run in of_dist.iter().filter(|r| r.tightness.is_some()) {
                assert!(
                    run.results <= last,
                    "{dist:?}: tightening grew the answer ({} > {last})",
                    run.results
                );
                assert!(run.results <= run.pareto_results);
                last = run.results;
            }
            // The tightest leg must demonstrably shrink the answer.
            assert!(
                last < pareto.results,
                "{dist:?}: tightest band never shrank the skyline"
            );
        }

        write_fdom_outputs(&opt, &runs);
        assert!(opt.out.join("fdom.csv").exists());
        let json = std::fs::read_to_string(opt.out.join("BENCH_fdom.json")).unwrap();
        for key in [
            "\"workload\"",
            "\"tightness\"",
            "\"results\"",
            "\"shrinkage\"",
            "\"fdom_filtered\"",
            "\"first_result_ms\"",
            "\"wall_ms\"",
        ] {
            assert!(json.contains(key), "BENCH_fdom.json missing {key}");
        }
    }

    #[test]
    fn obs_quick_measures_all_modes_and_writes_json() {
        let opt = quick_opts("progxe-obs");
        let runs = obs_measurements(&opt);
        assert_eq!(runs.len(), 3);
        let results: Vec<u64> = runs.iter().map(|r| r.results).collect();
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "tracing must not change what is emitted: {results:?}"
        );
        let ring = runs.iter().find(|r| r.mode == "ring").unwrap();
        assert!(ring.results > 0);
        assert!(ring.events > 0, "ring leg captured nothing");
        assert_eq!(ring.dropped, 0, "reference workload must fit the ring");
        for off_mode in ["off", "null"] {
            let run = runs.iter().find(|r| r.mode == off_mode).unwrap();
            assert_eq!(run.events, 0, "{off_mode} leg must not record");
        }

        // The writer runs on the same measurements (no second sweep). The
        // overhead gate itself is exercised by `figures -- obs` in CI; at
        // smoke-test scale (parallel test threads, ~ms walls) the ratio is
        // pure noise, so it is not asserted here.
        write_obs_outputs(&opt, &runs, obs_overhead_gate(true));
        assert!(opt.out.join("obs.csv").exists());
        let json = std::fs::read_to_string(opt.out.join("BENCH_obs.json")).unwrap();
        for key in [
            "\"workload\"",
            "\"ring_capacity\"",
            "\"overhead\"",
            "\"gate_pct\"",
            "\"ring_vs_null_pct\"",
            "\"mode\"",
            "\"wall_ms\"",
            "\"first_result_ms\"",
            "\"events\"",
            "\"dropped\"",
            "\"off\"",
            "\"null\"",
            "\"ring\"",
        ] {
            assert!(json.contains(key), "BENCH_obs.json missing {key}");
        }
    }

    #[test]
    fn threads_quick_writes_machine_readable_json() {
        let opt = quick_opts("progxe-threads");
        threads(&opt);
        assert!(opt.out.join("threads.csv").exists());
        let json = std::fs::read_to_string(opt.out.join("BENCH_threads.json")).unwrap();
        // Sanity over the contract the CI artifact consumers rely on.
        for key in [
            "\"workload\"",
            "\"threads\"",
            "\"wall_ms\"",
            "\"first_result_ms\"",
            "\"prefilter_min_pairs\"",
            "\"inline-nofilter\"",
            "\"pooled\"",
        ] {
            assert!(json.contains(key), "BENCH_threads.json missing {key}");
        }
    }
}
