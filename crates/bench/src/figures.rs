//! One function per paper figure/ablation: generate the workload(s), run
//! the algorithms, print the series the figure plots, write CSVs.
//!
//! Figure-to-function map (see DESIGN.md §3 and EXPERIMENTS.md):
//!
//! | Paper artifact | Function | Series |
//! |---|---|---|
//! | Fig. 10 a–c | [`fig10_prog`] | results vs time, 4 ProgXe variants × 3 distributions, σ=0.001 |
//! | Fig. 10 d–f | [`fig10_time`] | total time vs σ, 4 ProgXe variants × 3 distributions |
//! | Fig. 11 a–f | [`fig11`] | results vs time, ProgXe/ProgXe+/SSMJ, σ ∈ {0.01, 0.1} |
//! | Fig. 12 a–b | [`fig12`] | results vs time at d = 5, σ = 0.1 |
//! | Fig. 13 a–c | [`fig13`] | total time vs σ, ProgXe/ProgXe+/SSMJ |
//! | Sec. III-B bound | [`cellbound`] | comparable cells vs `k^d − (k−1)^d` |
//! | Sec. VI-B δ remark | [`ablate_delta`] | grid-granularity sensitivity |
//! | Sec. VI-B overhead claim | [`ablate_order`] | ProgOrder cost vs benefit |
//! | Sec. VII claim | [`ssmj_soundness`] | SSMJ batch-1 false positives |
//! | Figs. 11–12 at scale | [`scaling`] | first-output latency vs N |

use crate::report::{
    fmt_duration, fmt_opt_duration, json_object, json_str, write_csv, write_json, Table,
};
use crate::runners::{default_config_for, run_algo, run_algo_with_timeout, AlgoKind, RunResult};
use progxe_core::config::OrderingPolicy;
use progxe_core::executor::ProgXe;
use progxe_core::mapping::MapSet;
use progxe_core::session::ProgressiveEngine;
use progxe_core::sink::CountSink;
use progxe_core::source::SourceView;
use progxe_datagen::{Distribution, SmjWorkload, WorkloadSpec};
use progxe_runtime::ParallelProgXe;
use progxe_skyline::Preference;
use std::path::PathBuf;
use std::time::Duration;

/// Shared experiment options (CLI overrides).
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Cardinality override (default figure-specific).
    pub n: Option<usize>,
    /// Dimensionality override.
    pub dims: Option<usize>,
    /// Selectivity override (single-σ experiments only).
    pub sigma: Option<f64>,
    /// Workload seed.
    pub seed: u64,
    /// Output directory for CSVs.
    pub out: PathBuf,
    /// Shrink sizes drastically (test/CI mode).
    pub quick: bool,
}

impl Default for ExpOptions {
    fn default() -> Self {
        Self {
            n: None,
            dims: None,
            sigma: None,
            seed: 0xC0FFEE,
            out: PathBuf::from("results"),
            quick: false,
        }
    }
}

impl ExpOptions {
    fn pick_n(&self, default: usize) -> usize {
        let n = self.n.unwrap_or(default);
        if self.quick {
            (n / 10).max(60)
        } else {
            n
        }
    }

    fn pick_dims(&self, default: usize) -> usize {
        self.dims.unwrap_or(default)
    }
}

fn workload(n: usize, dims: usize, dist: Distribution, sigma: f64, seed: u64) -> SmjWorkload {
    WorkloadSpec::new(n, dims, dist, sigma)
        .with_seed(seed)
        .generate()
}

fn progressiveness_rows(dist: Distribution, sigma: f64, run: &RunResult) -> Vec<Vec<String>> {
    run.records
        .iter()
        .map(|r| {
            vec![
                dist.name().to_string(),
                format!("{sigma}"),
                run.algo.to_string(),
                format!("{}", r.elapsed.as_micros()),
                format!("{}", r.cumulative),
            ]
        })
        .collect()
}

fn summarize(table: &mut Table, dist: Distribution, run: &RunResult) {
    table.row(vec![
        dist.name().to_string(),
        run.algo.to_string(),
        format!("{}", run.results),
        fmt_opt_duration(run.first_result()),
        fmt_opt_duration(run.time_to_fraction(0.25)),
        fmt_opt_duration(run.time_to_fraction(0.5)),
        fmt_opt_duration(run.time_to_fraction(0.75)),
        fmt_duration(run.total_time),
    ]);
}

const PROG_HEADER: [&str; 8] = [
    "distribution",
    "algo",
    "results",
    "first",
    "t25",
    "t50",
    "t75",
    "total",
];
const SERIES_HEADER: [&str; 5] = ["distribution", "sigma", "algo", "elapsed_us", "cumulative"];

/// Figure 10 a–c: progressiveness of the four ProgXe variations
/// (correlated / independent / anti-correlated; σ = 0.001; d = 4).
pub fn fig10_prog(opt: &ExpOptions) {
    let n = opt.pick_n(4000);
    let dims = opt.pick_dims(4);
    let sigma = opt.sigma.unwrap_or(0.001);
    println!(
        "== Figure 10 a–c: ProgXe variations, progressiveness (N={n}, d={dims}, sigma={sigma}) =="
    );
    let mut table = Table::new(&PROG_HEADER);
    let mut series = Vec::new();
    for dist in Distribution::ALL {
        let w = workload(n, dims, dist, sigma, opt.seed);
        for kind in AlgoKind::PROGXE_VARIATIONS {
            let run = run_algo(kind, &w);
            series.extend(progressiveness_rows(dist, sigma, &run));
            summarize(&mut table, dist, &run);
        }
    }
    println!("{}", table.render());
    let path = write_csv(&opt.out, "fig10_prog_series", &SERIES_HEADER, &series).unwrap();
    println!("series written to {}", path.display());
}

/// Figure 10 d–f: total execution time of the four ProgXe variations over
/// the σ sweep.
pub fn fig10_time(opt: &ExpOptions) {
    sweep_sigma(
        "fig10_time",
        "Figure 10 d–f",
        &AlgoKind::PROGXE_VARIATIONS,
        opt,
    );
}

/// Figure 13 a–c: total execution time of ProgXe, ProgXe+ and SSMJ over the
/// σ sweep.
pub fn fig13(opt: &ExpOptions) {
    sweep_sigma("fig13_time", "Figure 13 a–c", &AlgoKind::VS_SSMJ, opt);
}

fn sweep_sigma(csv: &str, title: &str, algos: &[AlgoKind], opt: &ExpOptions) {
    let n = opt.pick_n(1000);
    let dims = opt.pick_dims(4);
    let sigmas: &[f64] = if opt.quick {
        &[0.001, 0.01]
    } else {
        &[0.0001, 0.001, 0.01, 0.1]
    };
    println!("== {title}: total time vs join selectivity (N={n}, d={dims}) ==");
    let mut table = Table::new(&["distribution", "sigma", "algo", "total", "results"]);
    let mut rows = Vec::new();
    for dist in Distribution::ALL {
        for &sigma in sigmas {
            let w = workload(n, dims, dist, sigma, opt.seed);
            for &kind in algos {
                let run = run_algo(kind, &w);
                table.row(vec![
                    dist.name().into(),
                    format!("{sigma}"),
                    run.algo.into(),
                    fmt_duration(run.total_time),
                    format!("{}", run.results),
                ]);
                rows.push(vec![
                    dist.name().to_string(),
                    format!("{sigma}"),
                    run.algo.to_string(),
                    format!("{}", run.total_time.as_micros()),
                    format!("{}", run.results),
                ]);
            }
        }
    }
    println!("{}", table.render());
    let path = write_csv(
        &opt.out,
        csv,
        &["distribution", "sigma", "algo", "total_us", "results"],
        &rows,
    )
    .unwrap();
    println!("rows written to {}", path.display());
}

/// Figure 11 a–f: progressiveness of ProgXe, ProgXe+ and SSMJ at σ = 0.01
/// and σ = 0.1 (d = 4).
pub fn fig11(opt: &ExpOptions) {
    let dims = opt.pick_dims(4);
    println!("== Figure 11 a–f: ProgXe vs ProgXe+ vs SSMJ, progressiveness (d={dims}) ==");
    let mut series = Vec::new();
    let mut table = Table::new(&PROG_HEADER);
    for (sigma, default_n) in [(0.01, 4000), (0.1, 2000)] {
        let sigma = opt.sigma.unwrap_or(sigma);
        let n = opt.pick_n(default_n);
        println!("-- sigma = {sigma}, N = {n} --");
        for dist in Distribution::ALL {
            let w = workload(n, dims, dist, sigma, opt.seed);
            for kind in AlgoKind::VS_SSMJ {
                let run = run_algo(kind, &w);
                series.extend(progressiveness_rows(dist, sigma, &run));
                summarize(&mut table, dist, &run);
            }
        }
    }
    println!("{}", table.render());
    let path = write_csv(&opt.out, "fig11_series", &SERIES_HEADER, &series).unwrap();
    println!("series written to {}", path.display());
}

/// Figure 12 a–b: d = 5, σ = 0.1 — independent and anti-correlated (the
/// setting where SSMJ degenerates; the paper reports it failing entirely on
/// anti-correlated data).
pub fn fig12(opt: &ExpOptions) {
    let n = opt.pick_n(1500);
    let dims = opt.pick_dims(5);
    let sigma = opt.sigma.unwrap_or(0.1);
    let budget = Duration::from_secs(if opt.quick { 20 } else { 120 });
    println!("== Figure 12 a–b: higher dimension (N={n}, d={dims}, sigma={sigma}) ==");
    let mut series = Vec::new();
    let mut table = Table::new(&PROG_HEADER);
    for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
        let w = workload(n, dims, dist, sigma, opt.seed);
        for kind in AlgoKind::VS_SSMJ {
            // SSMJ runs under a wall-clock budget: the paper's Figure 12.b
            // annotates "SSMJ did not return results even after several
            // hours" on anti-correlated data.
            match run_algo_with_timeout(kind, &w, budget) {
                Some(run) => {
                    series.extend(progressiveness_rows(dist, sigma, &run));
                    summarize(&mut table, dist, &run);
                }
                None => {
                    table.row(vec![
                        dist.name().into(),
                        kind.label().into(),
                        "0".into(),
                        format!(">{budget:?}"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        format!(">{budget:?}"),
                    ]);
                    println!(
                        "  {} produced no results within {budget:?} on {} data \
                         (cf. the paper's Fig. 12.b annotation)",
                        kind.label(),
                        dist.name()
                    );
                }
            }
        }
    }
    println!("{}", table.render());
    let path = write_csv(&opt.out, "fig12_series", &SERIES_HEADER, &series).unwrap();
    println!("series written to {}", path.display());
}

/// Scaling trend: first-output latency and total time vs N on
/// anti-correlated data. This is the laptop-scale demonstration of why the
/// paper's 500K-tuple runs separate ProgXe from SSMJ by orders of
/// magnitude: SSMJ's first batch waits for its entire phase-1 join +
/// skyline (growing superlinearly with N), while ProgXe's first safe batch
/// arrives after one region's tuple-level work (near-constant).
pub fn scaling(opt: &ExpOptions) {
    let dims = opt.pick_dims(4);
    let sigma = opt.sigma.unwrap_or(0.01);
    let ns: &[usize] = if opt.quick {
        &[250, 500]
    } else {
        &[1000, 2000, 4000, 8000, 16000]
    };
    println!("== Scaling: first-output latency vs N (anti-correlated, d={dims}, sigma={sigma}) ==");
    let mut table = Table::new(&["N", "algo", "results", "first output", "total"]);
    let mut rows = Vec::new();
    for &n in ns {
        let w = workload(n, dims, Distribution::AntiCorrelated, sigma, opt.seed);
        for kind in [AlgoKind::ProgXe, AlgoKind::Ssmj, AlgoKind::JfSl] {
            let run = run_algo(kind, &w);
            table.row(vec![
                format!("{n}"),
                run.algo.into(),
                format!("{}", run.results),
                fmt_opt_duration(run.first_result()),
                fmt_duration(run.total_time),
            ]);
            rows.push(vec![
                format!("{n}"),
                run.algo.to_string(),
                format!("{}", run.results),
                run.first_result()
                    .map(|d| d.as_micros().to_string())
                    .unwrap_or_default(),
                format!("{}", run.total_time.as_micros()),
            ]);
        }
    }
    println!("{}", table.render());
    let path = write_csv(
        &opt.out,
        "scaling",
        &["n", "algo", "results", "first_us", "total_us"],
        &rows,
    )
    .unwrap();
    println!("rows written to {}", path.display());
}

/// Thread scaling: end-to-end time of the 10k anti-correlated workload
/// (the skyline-hostile case) against `ProgXeConfig::threads`. `threads=1`
/// runs the unified driver's `Inline` backend; higher counts run its
/// `Pooled` backend over the engine's shared runtime. Reports per-row
/// speedup over the inline baseline — the ROADMAP's "as fast as the
/// hardware allows" tracking number — and additionally measures the inline
/// local-skyline pre-filter against the pre-filter-free streaming
/// arrangement (mode `inline-nofilter`), the measurement behind
/// `ProgXeConfig::prefilter_min_pairs`.
///
/// Besides the CSV, writes machine-readable `BENCH_threads.json`
/// (workload, per-run threads / wall-ms / first-result-ms) so the perf
/// trajectory is tracked across PRs; CI uploads it as an artifact.
pub fn threads(opt: &ExpOptions) {
    let n = opt.pick_n(10_000);
    // Defaults pick the tuple-phase-heavy corner (d = 3, σ = 0.1): enough
    // join matches per region that region fan-out, not the serial
    // look-ahead front end, dominates the wall clock.
    let dims = opt.pick_dims(3);
    let sigma = opt.sigma.unwrap_or(0.1);
    let counts: &[usize] = if opt.quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!(
        "== Thread scaling: total time vs threads \
         (anti-correlated, N={n}, d={dims}, sigma={sigma}; {hw} hardware threads) =="
    );
    let w = workload(n, dims, Distribution::AntiCorrelated, sigma, opt.seed);
    let maps = MapSet::pairwise_sum(dims, Preference::all_lowest(dims));
    let r = SourceView::new(&w.r.attrs, &w.r.join_keys).expect("parallel arrays");
    let t = SourceView::new(&w.t.attrs, &w.t.join_keys).expect("parallel arrays");

    let run_engine = |engine: Box<dyn ProgressiveEngine>| {
        let mut session = engine.open(&r, &t, &maps).expect("valid configuration");
        let mut first: Option<Duration> = None;
        while let Some(event) = session.next_batch() {
            if first.is_none() && !event.tuples.is_empty() {
                first = Some(event.elapsed);
            }
        }
        (first, session.finish())
    };

    struct Run {
        mode: &'static str,
        threads: usize,
        first: Option<Duration>,
        stats: progxe_core::stats::ExecStats,
    }
    let base_cfg = default_config_for(dims, sigma);
    let mut runs: Vec<Run> = Vec::new();
    // Discarded warm-up: first-touch allocation and CPU ramp must not be
    // charged to whichever measured arrangement happens to run first.
    let _ = run_engine(Box::new(ProgXe::new(base_cfg.clone())));
    // Pre-filter measurement: the pre-filter-free streaming arrangement
    // (the old sequential hot path) against the Inline default below.
    {
        let config = base_cfg.clone().with_prefilter_min_pairs(usize::MAX);
        let (first, stats) = run_engine(Box::new(ProgXe::new(config)));
        runs.push(Run {
            mode: "inline-nofilter",
            threads: 1,
            first,
            stats,
        });
    }
    for &count in counts {
        let config = base_cfg.clone().with_threads(count);
        let (mode, engine): (_, Box<dyn ProgressiveEngine>) = if count > 1 {
            ("pooled", Box::new(ParallelProgXe::new(config)))
        } else {
            ("inline", Box::new(ProgXe::new(config)))
        };
        let (first, stats) = run_engine(engine);
        runs.push(Run {
            mode,
            threads: count,
            first,
            stats,
        });
    }

    // Speedups are relative to the inline (threads = 1, default
    // pre-filter gate) run.
    let baseline = runs
        .iter()
        .find(|r| r.mode == "inline")
        .map(|r| r.stats.total_time)
        .expect("counts always include 1");
    let mut table = Table::new(&[
        "mode",
        "threads",
        "results",
        "first output",
        "total",
        "speedup",
    ]);
    let mut rows = Vec::new();
    let mut json_runs = Vec::new();
    for run in &runs {
        println!("   {}/threads={}: {}", run.mode, run.threads, run.stats);
        let total = run.stats.total_time;
        let speedup = baseline.as_secs_f64() / total.as_secs_f64().max(1e-9);
        table.row(vec![
            run.mode.to_string(),
            format!("{}", run.threads),
            format!("{}", run.stats.results_emitted),
            fmt_opt_duration(run.first),
            fmt_duration(total),
            format!("{speedup:.2}x"),
        ]);
        rows.push(vec![
            run.mode.to_string(),
            format!("{}", run.threads),
            format!("{}", run.stats.results_emitted),
            run.first
                .map(|d| d.as_micros().to_string())
                .unwrap_or_default(),
            format!("{}", total.as_micros()),
            format!("{speedup:.3}"),
        ]);
        json_runs.push(json_object(&[
            ("mode", json_str(run.mode)),
            ("threads", format!("{}", run.threads)),
            ("wall_ms", format!("{:.3}", total.as_secs_f64() * 1e3)),
            (
                "first_result_ms",
                run.first
                    .map(|d| format!("{:.3}", d.as_secs_f64() * 1e3))
                    .unwrap_or_else(|| "null".into()),
            ),
            ("results", format!("{}", run.stats.results_emitted)),
            (
                "tuples_prefiltered",
                format!("{}", run.stats.tuples_prefiltered),
            ),
            ("speedup_vs_inline", format!("{speedup:.3}")),
        ]));
    }
    println!("{}", table.render());
    if hw < 4 {
        println!(
            "note: only {hw} hardware thread(s) available — speedups here are \
             host-bound; run on a multi-core machine for the real curve"
        );
    }
    let path = write_csv(
        &opt.out,
        "threads",
        &[
            "mode", "threads", "results", "first_us", "total_us", "speedup",
        ],
        &rows,
    )
    .unwrap();
    println!("rows written to {}", path.display());
    let json = json_object(&[
        (
            "workload",
            json_object(&[
                ("distribution", json_str("anti-correlated")),
                ("n", format!("{n}")),
                ("dims", format!("{dims}")),
                ("sigma", format!("{sigma}")),
                ("seed", format!("{}", opt.seed)),
            ]),
        ),
        ("hardware_threads", format!("{hw}")),
        (
            "prefilter_min_pairs",
            format!("{}", base_cfg.prefilter_min_pairs),
        ),
        ("runs", format!("[{}]", json_runs.join(", "))),
    ]);
    let path = write_json(&opt.out, "BENCH_threads", &json).unwrap();
    println!("json written to {}", path.display());
}

/// Section III-B: the comparable-cell bound. For each new tuple, dominance
/// comparisons are confined to at most `k^d − (k−1)^d` of the `k^d` output
/// cells; this experiment reports the *measured* average candidate cells
/// per insertion against both bounds.
pub fn cellbound(opt: &ExpOptions) {
    let n = opt.pick_n(2000);
    let sigma = opt.sigma.unwrap_or(0.01);
    println!("== Section III-B: comparable-cell bound (N={n}, sigma={sigma}) ==");
    let mut table = Table::new(&[
        "d",
        "k",
        "cells k^d",
        "bound k^d-(k-1)^d",
        "measured avg",
        "measured max",
    ]);
    let mut rows = Vec::new();
    for dims in [2usize, 3, 4] {
        let w = workload(n, dims, Distribution::Independent, sigma, opt.seed);
        let config = default_config_for(dims, sigma);
        let k = config.output_cells_per_dim as u64;
        let maps = MapSet::pairwise_sum(dims, Preference::all_lowest(dims));
        let r = SourceView::new(&w.r.attrs, &w.r.join_keys).unwrap();
        let t = SourceView::new(&w.t.attrs, &w.t.join_keys).unwrap();
        let mut sink = CountSink::default();
        let stats = ProgXe::new(config).run(&r, &t, &maps, &mut sink).unwrap();
        let attempts = stats.tuples_inserted + stats.tuples_rejected_dominated;
        let avg = if attempts == 0 {
            0.0
        } else {
            stats.comparable_cells_visited as f64 / attempts as f64
        };
        let naive = k.pow(dims as u32);
        let bound = naive - (k - 1).pow(dims as u32);
        table.row(vec![
            format!("{dims}"),
            format!("{k}"),
            format!("{naive}"),
            format!("{bound}"),
            format!("{avg:.1}"),
            format!("{}", stats.comparable_cells_max),
        ]);
        rows.push(vec![
            format!("{dims}"),
            format!("{k}"),
            format!("{naive}"),
            format!("{bound}"),
            format!("{avg:.3}"),
            format!("{}", stats.comparable_cells_max),
        ]);
    }
    println!("{}", table.render());
    let path = write_csv(
        &opt.out,
        "cellbound",
        &[
            "d",
            "k",
            "naive_cells",
            "bound",
            "measured_avg",
            "measured_max",
        ],
        &rows,
    )
    .unwrap();
    println!("rows written to {}", path.display());
}

/// Section VI-B's δ remark: sensitivity to grid granularity (input
/// partitions per dimension × output cells per dimension).
pub fn ablate_delta(opt: &ExpOptions) {
    let n = opt.pick_n(2000);
    let dims = opt.pick_dims(3);
    let sigma = opt.sigma.unwrap_or(0.01);
    println!("== Ablation: grid granularity δ (N={n}, d={dims}, sigma={sigma}) ==");
    let w = workload(n, dims, Distribution::AntiCorrelated, sigma, opt.seed);
    let maps = MapSet::pairwise_sum(dims, Preference::all_lowest(dims));
    let r = SourceView::new(&w.r.attrs, &w.r.join_keys).unwrap();
    let t = SourceView::new(&w.t.attrs, &w.t.join_keys).unwrap();
    let mut table = Table::new(&[
        "p (input)",
        "k (output)",
        "regions",
        "cells",
        "total",
        "t50",
    ]);
    let mut rows = Vec::new();
    for p in [1usize, 2, 3, 4] {
        for k in [8usize, 16, 32] {
            let config = default_config_for(dims, sigma)
                .with_input_partitions(p)
                .with_output_cells(k);
            let mut sink = progxe_core::sink::ProgressSink::new();
            let stats = ProgXe::new(config).run(&r, &t, &maps, &mut sink).unwrap();
            let half = sink
                .records
                .iter()
                .find(|rec| rec.cumulative * 2 >= sink.total())
                .map(|rec| rec.elapsed);
            table.row(vec![
                format!("{p}"),
                format!("{k}"),
                format!("{}", stats.regions_created),
                format!("{}", stats.cells_tracked),
                fmt_duration(stats.total_time),
                fmt_opt_duration(half),
            ]);
            rows.push(vec![
                format!("{p}"),
                format!("{k}"),
                format!("{}", stats.regions_created),
                format!("{}", stats.cells_tracked),
                format!("{}", stats.total_time.as_micros()),
                half.map(|d| d.as_micros().to_string()).unwrap_or_default(),
            ]);
        }
    }
    println!("{}", table.render());
    let path = write_csv(
        &opt.out,
        "ablate_delta",
        &["p", "k", "regions", "cells", "total_us", "t50_us"],
        &rows,
    )
    .unwrap();
    println!("rows written to {}", path.display());
}

/// Section VI-B's overhead claim: "the overhead incurred due to ordering is
/// insignificant but has good progressiveness benefits". Compares ProgOrder
/// against random and FIFO ordering on identical workloads.
pub fn ablate_order(opt: &ExpOptions) {
    let n = opt.pick_n(2500);
    let dims = opt.pick_dims(4);
    let sigma = opt.sigma.unwrap_or(0.001);
    println!("== Ablation: ordering policy (N={n}, d={dims}, sigma={sigma}) ==");
    let mut table = Table::new(&["distribution", "policy", "results", "first", "t50", "total"]);
    let mut rows = Vec::new();
    for dist in Distribution::ALL {
        let w = workload(n, dims, dist, sigma, opt.seed);
        let maps = MapSet::pairwise_sum(dims, Preference::all_lowest(dims));
        let r = SourceView::new(&w.r.attrs, &w.r.join_keys).unwrap();
        let t = SourceView::new(&w.t.attrs, &w.t.join_keys).unwrap();
        for (name, ordering) in [
            ("ProgOrder", OrderingPolicy::ProgOrder),
            ("Random", OrderingPolicy::Random { seed: 0x5EED }),
            ("FIFO", OrderingPolicy::Fifo),
        ] {
            let config = default_config_for(dims, sigma).with_ordering(ordering);
            let mut sink = progxe_core::sink::ProgressSink::new();
            let stats = ProgXe::new(config).run(&r, &t, &maps, &mut sink).unwrap();
            let run = RunResult {
                algo: name,
                results: sink.total(),
                records: sink.records,
                total_time: stats.total_time,
                false_positives: 0,
            };
            table.row(vec![
                dist.name().into(),
                name.into(),
                format!("{}", run.results),
                fmt_opt_duration(run.first_result()),
                fmt_opt_duration(run.time_to_fraction(0.5)),
                fmt_duration(run.total_time),
            ]);
            rows.push(vec![
                dist.name().to_string(),
                name.to_string(),
                format!("{}", run.results),
                run.first_result()
                    .map(|d| d.as_micros().to_string())
                    .unwrap_or_default(),
                run.time_to_fraction(0.5)
                    .map(|d| d.as_micros().to_string())
                    .unwrap_or_default(),
                format!("{}", run.total_time.as_micros()),
            ]);
        }
    }
    println!("{}", table.render());
    let path = write_csv(
        &opt.out,
        "ablate_order",
        &[
            "distribution",
            "policy",
            "results",
            "first_us",
            "t50_us",
            "total_us",
        ],
        &rows,
    )
    .unwrap();
    println!("rows written to {}", path.display());
}

/// Section VII's claim, quantified: SSMJ's batch-1 results are not final
/// under mapping functions. Counts false positives across distributions
/// and dimensionalities.
pub fn ssmj_soundness(opt: &ExpOptions) {
    let n = opt.pick_n(1500);
    let sigma = opt.sigma.unwrap_or(0.01);
    println!("== SSMJ batch-1 soundness under maps (N={n}, sigma={sigma}) ==");
    let mut table = Table::new(&["distribution", "d", "batch1", "false positives", "final"]);
    let mut rows = Vec::new();
    for dist in Distribution::ALL {
        for dims in [2usize, 3, 4] {
            let w = workload(n, dims, dist, sigma, opt.seed);
            let run = run_algo(AlgoKind::Ssmj, &w);
            let batch1 = run.records.first().map(|r| r.cumulative).unwrap_or(0);
            table.row(vec![
                dist.name().into(),
                format!("{dims}"),
                format!("{batch1}"),
                format!("{}", run.false_positives),
                format!("{}", run.results - run.false_positives),
            ]);
            rows.push(vec![
                dist.name().to_string(),
                format!("{dims}"),
                format!("{batch1}"),
                format!("{}", run.false_positives),
                format!("{}", run.results - run.false_positives),
            ]);
        }
    }
    println!("{}", table.render());
    let path = write_csv(
        &opt.out,
        "ssmj_soundness",
        &["distribution", "d", "batch1", "false_positives", "final"],
        &rows,
    )
    .unwrap();
    println!("rows written to {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts(dir: &str) -> ExpOptions {
        ExpOptions {
            quick: true,
            out: std::env::temp_dir().join(dir),
            ..ExpOptions::default()
        }
    }

    #[test]
    fn fig10_prog_quick_writes_csv() {
        let opt = quick_opts("progxe-fig10");
        fig10_prog(&opt);
        assert!(opt.out.join("fig10_prog_series.csv").exists());
    }

    #[test]
    fn fig12_quick_runs() {
        let opt = quick_opts("progxe-fig12");
        fig12(&opt);
        assert!(opt.out.join("fig12_series.csv").exists());
    }

    #[test]
    fn ssmj_soundness_quick_runs() {
        let opt = quick_opts("progxe-ssmj");
        ssmj_soundness(&opt);
        assert!(opt.out.join("ssmj_soundness.csv").exists());
    }

    #[test]
    fn cellbound_quick_runs() {
        let opt = quick_opts("progxe-cellbound");
        cellbound(&opt);
        assert!(opt.out.join("cellbound.csv").exists());
    }

    #[test]
    fn threads_quick_writes_machine_readable_json() {
        let opt = quick_opts("progxe-threads");
        threads(&opt);
        assert!(opt.out.join("threads.csv").exists());
        let json = std::fs::read_to_string(opt.out.join("BENCH_threads.json")).unwrap();
        // Sanity over the contract the CI artifact consumers rely on.
        for key in [
            "\"workload\"",
            "\"threads\"",
            "\"wall_ms\"",
            "\"first_result_ms\"",
            "\"prefilter_min_pairs\"",
            "\"inline-nofilter\"",
            "\"pooled\"",
        ] {
            assert!(json.contains(key), "BENCH_threads.json missing {key}");
        }
    }
}
