//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Section VI) on scaled-down workloads.
//!
//! The paper's testbed (N = 500K tuples per source, AMD 2.6 GHz, Java
//! HotSpot, runtimes of 100–10000 seconds per data point) is impractical to
//! replay per-commit; the harness defaults to cardinalities that finish in
//! seconds while preserving every *shape* the paper reports — who produces
//! results first, who wins by orders of magnitude, where the crossovers
//! fall. Every experiment accepts `--n/--sigma/--dims` overrides, so
//! paper-scale runs are one flag away.
//!
//! See EXPERIMENTS.md for the experiment-by-experiment comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod microbench;
pub mod report;
pub mod runners;

pub use report::{write_csv, Table};
pub use runners::{default_config_for, run_algo, AlgoKind, RunResult};
