//! Uniform runners: one call = one algorithm over one workload, returning
//! the progressiveness series and summary counters.
//!
//! Every algorithm is driven through the workspace-wide
//! [`ProgressiveEngine`] interface: [`AlgoKind::build`] instantiates the
//! engine, and [`run_algo`] pulls its
//! [`QuerySession`](progxe_core::session::QuerySession) to completion,
//! turning the event stream into the `(elapsed, cumulative)` series the
//! paper's figures plot.

use progxe_baselines::{JfSlEngine, SajEngine, SkyAlgo, SsmjEngine};
use progxe_core::config::{OrderingPolicy, ProgXeConfig};
use progxe_core::executor::ProgXe;
use progxe_core::mapping::MapSet;
use progxe_core::session::{CancellationToken, ProgressiveEngine};
use progxe_core::source::SourceView;
use progxe_core::stats::ProgressRecord;
use progxe_datagen::SmjWorkload;
use progxe_skyline::Preference;
use std::str::FromStr;
use std::time::Duration;

/// The algorithms under comparison, matching the paper's legends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoKind {
    /// ProgXe — ordering on, push-through off.
    ProgXe,
    /// ProgXe+ — ordering on, push-through on.
    ProgXePlus,
    /// ProgXe (No-Order) — random region order.
    ProgXeNoOrder,
    /// ProgXe+ (No-Order).
    ProgXePlusNoOrder,
    /// SSMJ (two-batch baseline).
    Ssmj,
    /// JF-SL (blocking baseline).
    JfSl,
    /// JF-SL+ (blocking + push-through).
    JfSlPlus,
    /// SAJ (Fagin-style threshold baseline).
    Saj,
}

impl AlgoKind {
    /// Legend label as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            AlgoKind::ProgXe => "ProgXe",
            AlgoKind::ProgXePlus => "ProgXe+",
            AlgoKind::ProgXeNoOrder => "ProgXe (No-Order)",
            AlgoKind::ProgXePlusNoOrder => "ProgXe+ (No-Order)",
            AlgoKind::Ssmj => "SSMJ",
            AlgoKind::JfSl => "JF-SL",
            AlgoKind::JfSlPlus => "JF-SL+",
            AlgoKind::Saj => "SAJ",
        }
    }

    /// The four ProgXe variations of Figure 10.
    pub const PROGXE_VARIATIONS: [AlgoKind; 4] = [
        AlgoKind::ProgXe,
        AlgoKind::ProgXePlus,
        AlgoKind::ProgXeNoOrder,
        AlgoKind::ProgXePlusNoOrder,
    ];

    /// The head-to-head set of Figures 11–13.
    pub const VS_SSMJ: [AlgoKind; 3] = [AlgoKind::ProgXe, AlgoKind::ProgXePlus, AlgoKind::Ssmj];

    /// Instantiates the engine this legend entry denotes; `dims` and
    /// `sigma` parameterize the ProgXe grid configuration.
    pub fn build(self, dims: usize, sigma: f64) -> Box<dyn ProgressiveEngine> {
        match self {
            AlgoKind::ProgXe
            | AlgoKind::ProgXePlus
            | AlgoKind::ProgXeNoOrder
            | AlgoKind::ProgXePlusNoOrder => {
                let push = matches!(self, AlgoKind::ProgXePlus | AlgoKind::ProgXePlusNoOrder);
                let ordered = matches!(self, AlgoKind::ProgXe | AlgoKind::ProgXePlus);
                let mut config = default_config_for(dims, sigma).with_push_through(push);
                if !ordered {
                    config = config.with_ordering(OrderingPolicy::Random { seed: 0x5EED });
                }
                Box::new(ProgXe::new(config))
            }
            AlgoKind::Ssmj => Box::new(SsmjEngine::new(SkyAlgo::Sfs)),
            AlgoKind::JfSl => Box::new(JfSlEngine::new(SkyAlgo::Sfs)),
            AlgoKind::JfSlPlus => Box::new(JfSlEngine::plus(SkyAlgo::Sfs)),
            AlgoKind::Saj => Box::new(SajEngine::new(SkyAlgo::Sfs)),
        }
    }
}

impl FromStr for AlgoKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "progxe" => Ok(AlgoKind::ProgXe),
            "progxe+" | "progxe-plus" => Ok(AlgoKind::ProgXePlus),
            "progxe-noorder" => Ok(AlgoKind::ProgXeNoOrder),
            "progxe+-noorder" | "progxe-plus-noorder" => Ok(AlgoKind::ProgXePlusNoOrder),
            "ssmj" => Ok(AlgoKind::Ssmj),
            "jfsl" | "jf-sl" => Ok(AlgoKind::JfSl),
            "jfsl+" | "jf-sl+" => Ok(AlgoKind::JfSlPlus),
            "saj" => Ok(AlgoKind::Saj),
            other => Err(format!("unknown algorithm {other:?}")),
        }
    }
}

/// One run's measurements.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Algorithm label.
    pub algo: &'static str,
    /// `(elapsed, cumulative results)` per output batch.
    pub records: Vec<ProgressRecord>,
    /// Total wall-clock time.
    pub total_time: Duration,
    /// Total results reported (for SSMJ this may exceed the true skyline by
    /// its batch-1 false positives).
    pub results: u64,
    /// SSMJ batch-1 false positives (0 elsewhere).
    pub false_positives: u64,
}

impl RunResult {
    /// Time at which `fraction` (0..=1) of the results had been reported.
    pub fn time_to_fraction(&self, fraction: f64) -> Option<Duration> {
        let target = (self.results as f64 * fraction).ceil() as u64;
        self.records
            .iter()
            .find(|r| r.cumulative >= target.max(1))
            .map(|r| r.elapsed)
    }

    /// Time of the first reported result.
    pub fn first_result(&self) -> Option<Duration> {
        self.records.first().map(|r| r.elapsed)
    }
}

/// Grid granularity suited to the output dimensionality (keeps region
/// counts and tracked-cell counts in the "abstraction ≪ data" regime the
/// paper assumes).
pub fn default_config_for(dims: usize, sigma: f64) -> ProgXeConfig {
    let (input_p, output_k) = match dims {
        0 | 1 => (8, 64),
        2 => (6, 48),
        3 => (3, 24),
        4 => (2, 12),
        _ => (2, 8),
    };
    ProgXeConfig::default()
        .with_input_partitions(input_p)
        .with_output_cells(output_k)
        .with_selectivity_hint(sigma)
}

/// Runs one algorithm over a generated workload; `dims` output dimensions
/// with the paper's pairwise-sum mapping, all minimized.
pub fn run_algo(kind: AlgoKind, workload: &SmjWorkload) -> RunResult {
    run_algo_observed(kind, workload, |_| {})
}

/// [`run_algo`] with a hook receiving the session's [`CancellationToken`]
/// right after the session opens, so a supervisor can stop the run.
fn run_algo_observed(
    kind: AlgoKind,
    workload: &SmjWorkload,
    on_open: impl FnOnce(CancellationToken),
) -> RunResult {
    let dims = workload.spec.dims;
    let sigma = workload.spec.selectivity;
    let maps = MapSet::pairwise_sum(dims, Preference::all_lowest(dims));
    let r = SourceView::new(&workload.r.attrs, &workload.r.join_keys).expect("parallel arrays");
    let t = SourceView::new(&workload.t.attrs, &workload.t.join_keys).expect("parallel arrays");

    let engine = kind.build(dims, sigma);
    let mut session = engine.open(&r, &t, &maps).expect("valid configuration");
    on_open(session.cancel_token());
    let mut records = Vec::new();
    let mut cumulative = 0u64;
    while let Some(event) = session.next_batch() {
        cumulative += event.tuples.len() as u64;
        records.push(ProgressRecord {
            elapsed: event.elapsed,
            cumulative,
        });
    }
    let stats = session.finish();

    RunResult {
        algo: kind.label(),
        records,
        total_time: stats.total_time,
        results: cumulative,
        false_positives: stats.results_retracted,
    }
}

/// Runs an algorithm with a wall-clock budget. Returns `None` when the run
/// did not finish in time — mirroring the paper's Figure 12.b annotation
/// "SSMJ did not return results (even after several hours)". On timeout the
/// worker's session is cancelled: ProgXe stops at its next region boundary,
/// the blocking baselines at their next batch boundary, instead of running
/// the whole query to completion in the background.
pub fn run_algo_with_timeout(
    kind: AlgoKind,
    workload: &SmjWorkload,
    budget: Duration,
) -> Option<RunResult> {
    let (tx, rx) = std::sync::mpsc::channel();
    let (token_tx, token_rx) = std::sync::mpsc::channel();
    let w = workload.clone();
    std::thread::Builder::new()
        .name(format!("bench-{}", kind.label()))
        .spawn(move || {
            let result = run_algo_observed(kind, &w, |token| {
                let _ = token_tx.send(token);
            });
            let _ = tx.send(result);
        })
        .expect("spawn bench worker");
    match rx.recv_timeout(budget) {
        Ok(result) => Some(result),
        Err(_) => {
            if let Ok(token) = token_rx.try_recv() {
                token.cancel();
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use progxe_datagen::{Distribution, WorkloadSpec};

    #[test]
    fn timeout_runner_completes_fast_runs() {
        let workload = WorkloadSpec::new(100, 2, Distribution::Independent, 0.05).generate();
        let run = run_algo_with_timeout(AlgoKind::JfSl, &workload, Duration::from_secs(30));
        assert!(run.is_some());
    }

    #[test]
    fn parse_algo_names() {
        assert_eq!("progxe".parse::<AlgoKind>(), Ok(AlgoKind::ProgXe));
        assert_eq!("PROGXE+".parse::<AlgoKind>(), Ok(AlgoKind::ProgXePlus));
        assert_eq!("ssmj".parse::<AlgoKind>(), Ok(AlgoKind::Ssmj));
        assert!("nope".parse::<AlgoKind>().is_err());
    }

    #[test]
    fn all_algorithms_agree_on_result_count() {
        let workload = WorkloadSpec::new(300, 2, Distribution::Independent, 0.02).generate();
        let reference = run_algo(AlgoKind::JfSl, &workload).results;
        assert!(reference > 0);
        for kind in [
            AlgoKind::ProgXe,
            AlgoKind::ProgXePlus,
            AlgoKind::ProgXeNoOrder,
            AlgoKind::JfSlPlus,
            AlgoKind::Saj,
        ] {
            let run = run_algo(kind, &workload);
            assert_eq!(run.results, reference, "{} diverged", run.algo);
        }
        // SSMJ may over-report by its batch-1 false positives.
        let run = run_algo(AlgoKind::Ssmj, &workload);
        assert_eq!(run.results - run.false_positives, reference);
    }

    #[test]
    fn progxe_reports_before_the_end() {
        let workload = WorkloadSpec::new(500, 2, Distribution::AntiCorrelated, 0.02).generate();
        let run = run_algo(AlgoKind::ProgXe, &workload);
        assert!(run.records.len() > 1, "expected multiple batches");
        let first = run.first_result().unwrap();
        assert!(
            first < run.total_time,
            "first result must precede completion"
        );
    }

    #[test]
    fn time_to_fraction_is_monotone() {
        let workload = WorkloadSpec::new(400, 2, Distribution::Independent, 0.02).generate();
        let run = run_algo(AlgoKind::ProgXe, &workload);
        let q25 = run.time_to_fraction(0.25).unwrap();
        let q50 = run.time_to_fraction(0.5).unwrap();
        let q100 = run.time_to_fraction(1.0).unwrap();
        assert!(q25 <= q50 && q50 <= q100);
    }
}
