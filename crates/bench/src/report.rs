//! Output plumbing: CSV files and aligned text tables.

use std::fs;
use std::io::Write;
use std::path::Path;

/// Writes CSV rows (first row = header) to `dir/name.csv`.
pub fn write_csv(
    dir: &Path,
    name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<std::path::PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::io::BufWriter::new(fs::File::create(&path)?);
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    f.flush()?;
    Ok(path)
}

/// Writes a pre-rendered JSON document to `dir/name.json` (no external
/// JSON crates: callers build the string with the helpers below). Used for
/// the machine-readable `BENCH_*.json` artifacts CI uploads so the perf
/// trajectory is trackable across PRs.
pub fn write_json(dir: &Path, name: &str, json: &str) -> std::io::Result<std::path::PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, json)?;
    Ok(path)
}

/// Renders a JSON object from key → already-rendered-value pairs.
pub fn json_object(fields: &[(&str, String)]) -> String {
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect();
    format!("{{{}}}", body.join(", "))
}

/// Renders a JSON string literal (the benches only emit identifier-like
/// strings; quotes/backslashes are escaped for safety, control characters
/// do not occur).
pub fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

/// A simple aligned text table for stdout reporting.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// All data rows (for CSV reuse).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[i].saturating_sub(cell.len())));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a duration in adaptive units (µs/ms/s).
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.3}s", us as f64 / 1_000_000.0)
    }
}

/// Formats an optional duration; `-` when absent.
pub fn fmt_opt_duration(d: Option<std::time::Duration>) -> String {
    d.map(fmt_duration).unwrap_or_else(|| "-".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["algo", "time"]);
        t.row(vec!["ProgXe".into(), "1.2ms".into()]);
        t.row(vec!["SSMJ".into(), "250ms".into()]);
        let s = t.render();
        assert!(s.contains("algo"));
        assert!(s.lines().count() >= 4);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[2].starts_with("ProgXe"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12µs");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50ms");
        assert_eq!(fmt_duration(Duration::from_millis(2500)), "2.500s");
        assert_eq!(fmt_opt_duration(None), "-");
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("progxe-bench-test");
        let path = write_csv(&dir, "test", &["a", "b"], &[vec!["1".into(), "2".into()]]).unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }

    #[test]
    fn json_helpers_render() {
        assert_eq!(json_str("anti\"corr"), "\"anti\\\"corr\"");
        let obj = json_object(&[("a", "1".into()), ("b", json_str("x"))]);
        assert_eq!(obj, "{\"a\": 1, \"b\": \"x\"}");
        let dir = std::env::temp_dir().join("progxe-bench-test");
        let path = write_json(&dir, "BENCH_test", &obj).unwrap();
        assert!(path.ends_with("BENCH_test.json"));
        assert_eq!(std::fs::read_to_string(path).unwrap(), obj);
    }
}
