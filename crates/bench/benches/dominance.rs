//! Micro-benchmarks: the innermost operations — dominance tests and
//! incremental window maintenance.

use progxe_bench::microbench::Group;
use progxe_skyline::{bnl::BnlWindow, Preference};

fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 33) % 1000) as f64 / 10.0
}

fn bench_dominates(group: &mut Group) {
    for dims in [2usize, 4, 6, 8] {
        let pref = Preference::all_lowest(dims);
        let mut st = 7u64;
        let pairs: Vec<(Vec<f64>, Vec<f64>)> = (0..256)
            .map(|_| {
                (
                    (0..dims).map(|_| lcg(&mut st)).collect(),
                    (0..dims).map(|_| lcg(&mut st)).collect(),
                )
            })
            .collect();
        group.bench(&format!("dominates/d={dims} (256 pairs)"), || {
            let mut count = 0u32;
            for (a, b) in &pairs {
                if pref.dominates(a, b) {
                    count += 1;
                }
            }
            count
        });
    }
}

fn bench_window_offer(group: &mut Group) {
    let dims = 3;
    let mut st = 11u64;
    let points: Vec<Vec<f64>> = (0..2000)
        .map(|_| (0..dims).map(|_| lcg(&mut st)).collect())
        .collect();
    group.bench("bnl_window_offer_2k", || {
        let mut w: BnlWindow<u32> = BnlWindow::new(Preference::all_lowest(dims));
        for (i, p) in points.iter().enumerate() {
            w.offer(p, i as u32);
        }
        w.len()
    });
}

fn main() {
    let mut group = Group::new("dominance");
    bench_dominates(&mut group);
    bench_window_offer(&mut group);
}
