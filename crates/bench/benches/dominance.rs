//! Micro-benchmarks: the innermost operations — dominance tests and
//! incremental window maintenance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use progxe_skyline::{bnl::BnlWindow, Preference};
use std::hint::black_box;

fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 33) % 1000) as f64 / 10.0
}

fn bench_dominates(c: &mut Criterion) {
    let mut group = c.benchmark_group("dominates");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for dims in [2usize, 4, 6, 8] {
        let pref = Preference::all_lowest(dims);
        let mut st = 7u64;
        let pairs: Vec<(Vec<f64>, Vec<f64>)> = (0..256)
            .map(|_| {
                (
                    (0..dims).map(|_| lcg(&mut st)).collect(),
                    (0..dims).map(|_| lcg(&mut st)).collect(),
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(dims), &pairs, |b, pairs| {
            b.iter(|| {
                let mut count = 0u32;
                for (a, bb) in pairs {
                    if pref.dominates(a, bb) {
                        count += 1;
                    }
                }
                black_box(count)
            })
        });
    }
    group.finish();
}

fn bench_window_offer(c: &mut Criterion) {
    let dims = 3;
    let mut st = 11u64;
    let points: Vec<Vec<f64>> = (0..2000)
        .map(|_| (0..dims).map(|_| lcg(&mut st)).collect())
        .collect();
    c.bench_function("bnl_window_offer_2k", |b| {
        b.iter(|| {
            let mut w: BnlWindow<u32> = BnlWindow::new(Preference::all_lowest(dims));
            for (i, p) in points.iter().enumerate() {
                w.offer(p, i as u32);
            }
            black_box(w.len())
        })
    });
}

criterion_group!(benches, bench_dominates, bench_window_offer);
criterion_main!(benches);
