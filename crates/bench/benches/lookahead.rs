//! Micro-benchmarks: the abstraction-level machinery — input grid build,
//! output-space look-ahead, and cell tracking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use progxe_core::cells::CellStore;
use progxe_core::config::SignatureConfig;
use progxe_core::grid::InputGrid;
use progxe_core::lookahead::{run_lookahead, track_cells};
use progxe_core::mapping::MapSet;
use progxe_core::source::SourceView;
use progxe_datagen::{Distribution, WorkloadSpec};
use progxe_skyline::Preference;
use std::hint::black_box;

fn bench_grid_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_build");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [1_000usize, 10_000, 50_000] {
        let w = WorkloadSpec::new(n, 3, Distribution::Independent, 0.01).generate();
        let view = SourceView::new(&w.r.attrs, &w.r.join_keys).unwrap();
        let domain = w.spec.join_domain_size() as usize;
        group.bench_with_input(BenchmarkId::from_parameter(n), &view, |b, v| {
            b.iter(|| black_box(InputGrid::build(v, 3, SignatureConfig::Exact, domain).len()))
        });
    }
    group.finish();
}

fn bench_lookahead(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookahead");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for dist in Distribution::ALL {
        let w = WorkloadSpec::new(10_000, 3, dist, 0.01).generate();
        let r = SourceView::new(&w.r.attrs, &w.r.join_keys).unwrap();
        let t = SourceView::new(&w.t.attrs, &w.t.join_keys).unwrap();
        let domain = w.spec.join_domain_size() as usize;
        let rg = InputGrid::build(&r, 3, SignatureConfig::Exact, domain);
        let tg = InputGrid::build(&t, 3, SignatureConfig::Exact, domain);
        let maps = MapSet::pairwise_sum(3, Preference::all_lowest(3));
        group.bench_with_input(
            BenchmarkId::new("regions", dist.name()),
            &(&rg, &tg),
            |b, (rg, tg)| b.iter(|| black_box(run_lookahead(rg, tg, &maps, 24).regions.len())),
        );
        let la = run_lookahead(&rg, &tg, &maps, 24);
        group.bench_with_input(
            BenchmarkId::new("track_cells", dist.name()),
            &la,
            |b, la| {
                b.iter(|| {
                    let mut store = CellStore::new(la.grid.clone());
                    black_box(track_cells(la, &mut store));
                    black_box(store.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_grid_build, bench_lookahead);
criterion_main!(benches);
