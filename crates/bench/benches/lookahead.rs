//! Micro-benchmarks: the abstraction-level machinery — input grid build,
//! output-space look-ahead, and cell tracking.

use progxe_bench::microbench::Group;
use progxe_core::cells::CellStore;
use progxe_core::config::SignatureConfig;
use progxe_core::grid::InputGrid;
use progxe_core::lookahead::{run_lookahead, track_cells};
use progxe_core::mapping::MapSet;
use progxe_core::source::SourceView;
use progxe_datagen::{Distribution, WorkloadSpec};
use progxe_skyline::Preference;

fn bench_grid_build(group: &mut Group) {
    for n in [1_000usize, 10_000, 50_000] {
        let w = WorkloadSpec::new(n, 3, Distribution::Independent, 0.01).generate();
        let view = SourceView::new(&w.r.attrs, &w.r.join_keys).unwrap();
        let domain = w.spec.join_domain_size() as usize;
        group.bench(&format!("grid_build/n={n}"), || {
            InputGrid::build(&view, 3, SignatureConfig::Exact, domain).len()
        });
    }
}

fn bench_lookahead(group: &mut Group) {
    for dist in Distribution::ALL {
        let w = WorkloadSpec::new(10_000, 3, dist, 0.01).generate();
        let r = SourceView::new(&w.r.attrs, &w.r.join_keys).unwrap();
        let t = SourceView::new(&w.t.attrs, &w.t.join_keys).unwrap();
        let domain = w.spec.join_domain_size() as usize;
        let rg = InputGrid::build(&r, 3, SignatureConfig::Exact, domain);
        let tg = InputGrid::build(&t, 3, SignatureConfig::Exact, domain);
        let maps = MapSet::pairwise_sum(3, Preference::all_lowest(3));
        group.bench(&format!("regions/{}", dist.name()), || {
            run_lookahead(&rg, &tg, &maps, 24).regions.len()
        });
        let la = run_lookahead(&rg, &tg, &maps, 24);
        group.bench(&format!("track_cells/{}", dist.name()), || {
            let mut store = CellStore::new(la.grid.clone());
            track_cells(&la, &mut store);
            store.len()
        });
    }
}

fn main() {
    let mut group = Group::new("lookahead");
    bench_grid_build(&mut group);
    bench_lookahead(&mut group);
}
