//! End-to-end comparison bench: complete SkyMapJoin evaluation, ProgXe vs
//! all baselines, on one moderate workload per distribution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use progxe_bench::runners::{run_algo, AlgoKind};
use progxe_datagen::{Distribution, SmjWorkload, WorkloadSpec};
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for dist in Distribution::ALL {
        let w: SmjWorkload = WorkloadSpec::new(1000, 3, dist, 0.01).generate();
        for kind in [
            AlgoKind::ProgXe,
            AlgoKind::ProgXePlus,
            AlgoKind::Ssmj,
            AlgoKind::JfSl,
            AlgoKind::JfSlPlus,
            AlgoKind::Saj,
        ] {
            group.bench_with_input(
                BenchmarkId::new(kind.label().replace(' ', "_"), dist.name()),
                &w,
                |b, w| b.iter(|| black_box(run_algo(kind, w).results)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
