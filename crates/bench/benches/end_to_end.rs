//! End-to-end comparison bench: complete SkyMapJoin evaluation, ProgXe vs
//! all baselines, on one moderate workload per distribution.

use progxe_bench::microbench::Group;
use progxe_bench::runners::{run_algo, AlgoKind};
use progxe_datagen::{Distribution, SmjWorkload, WorkloadSpec};

fn main() {
    let mut group = Group::new("end_to_end");
    for dist in Distribution::ALL {
        let w: SmjWorkload = WorkloadSpec::new(1000, 3, dist, 0.01).generate();
        for kind in [
            AlgoKind::ProgXe,
            AlgoKind::ProgXePlus,
            AlgoKind::Ssmj,
            AlgoKind::JfSl,
            AlgoKind::JfSlPlus,
            AlgoKind::Saj,
        ] {
            group.bench(
                &format!("{}/{}", kind.label().replace(' ', "_"), dist.name()),
                || run_algo(kind, &w).results,
            );
        }
    }
}
