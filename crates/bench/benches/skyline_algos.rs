//! Micro-benchmarks: classic skyline algorithms across the three canonical
//! distributions (substrate for the paper's baselines and cost model).

use progxe_bench::microbench::Group;
use progxe_datagen::rng::StdRng;
use progxe_datagen::Distribution;
use progxe_skyline::{
    bnl_skyline, dnc_skyline, salsa_skyline, sfs_skyline, PointStore, Preference,
};

fn dataset(dist: Distribution, n: usize, dims: usize) -> PointStore {
    let mut rng = StdRng::seed_from_u64(0xFEED);
    let mut store = PointStore::with_capacity(dims, n);
    let mut buf = Vec::new();
    let mut scaled = vec![0.0; dims];
    for _ in 0..n {
        dist.sample_unit(&mut rng, dims, &mut buf);
        for (s, &u) in scaled.iter_mut().zip(&buf) {
            *s = 1.0 + u * 99.0;
        }
        store.push(&scaled);
    }
    store
}

fn main() {
    let n = 2000;
    let dims = 3;
    let pref = Preference::all_lowest(dims);
    let mut group = Group::new("skyline_algos");
    for dist in Distribution::ALL {
        let data = dataset(dist, n, dims);
        group.bench(&format!("bnl/{}", dist.name()), || {
            bnl_skyline(&data, &pref).len()
        });
        group.bench(&format!("sfs/{}", dist.name()), || {
            sfs_skyline(&data, &pref).len()
        });
        group.bench(&format!("dnc/{}", dist.name()), || {
            dnc_skyline(&data, &pref).len()
        });
        group.bench(&format!("salsa/{}", dist.name()), || {
            salsa_skyline(&data, &pref).len()
        });
    }
}
