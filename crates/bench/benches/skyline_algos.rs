//! Micro-benchmarks: classic skyline algorithms across the three canonical
//! distributions (substrate for the paper's baselines and cost model).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use progxe_datagen::Distribution;
use progxe_skyline::{bnl_skyline, dnc_skyline, salsa_skyline, sfs_skyline, PointStore, Preference};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn dataset(dist: Distribution, n: usize, dims: usize) -> PointStore {
    let mut rng = StdRng::seed_from_u64(0xFEED);
    let mut store = PointStore::with_capacity(dims, n);
    let mut buf = Vec::new();
    let mut scaled = vec![0.0; dims];
    for _ in 0..n {
        dist.sample_unit(&mut rng, dims, &mut buf);
        for (s, &u) in scaled.iter_mut().zip(&buf) {
            *s = 1.0 + u * 99.0;
        }
        store.push(&scaled);
    }
    store
}

fn bench_skyline_algos(c: &mut Criterion) {
    let n = 2000;
    let dims = 3;
    let pref = Preference::all_lowest(dims);
    let mut group = c.benchmark_group("skyline_algos");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for dist in Distribution::ALL {
        let data = dataset(dist, n, dims);
        group.bench_with_input(BenchmarkId::new("bnl", dist.name()), &data, |b, d| {
            b.iter(|| black_box(bnl_skyline(d, &pref).len()))
        });
        group.bench_with_input(BenchmarkId::new("sfs", dist.name()), &data, |b, d| {
            b.iter(|| black_box(sfs_skyline(d, &pref).len()))
        });
        group.bench_with_input(BenchmarkId::new("dnc", dist.name()), &data, |b, d| {
            b.iter(|| black_box(dnc_skyline(d, &pref).len()))
        });
        group.bench_with_input(BenchmarkId::new("salsa", dist.name()), &data, |b, d| {
            b.iter(|| black_box(salsa_skyline(d, &pref).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_skyline_algos);
criterion_main!(benches);
