//! SSMJ — the Skyline-Sort-Merge-Join of Jin et al. (ICDE 2007), as
//! characterized in Section VI-A of the paper.
//!
//! Per source, SSMJ maintains two active lists:
//!
//! * `LS(S)` — the *source-level* skyline (ignoring the join condition);
//! * `LS(N)` — the *group-level* skyline per join-attribute value, minus
//!   tuples already in `LS(S)`.
//!
//! Tuples in neither list are dominated within their own join group and can
//! never contribute (safe under separable monotone maps). Evaluation then
//! proceeds in four join phases; results are reported in **two batches**:
//!
//! 1. `LS(S) ⋈ LS(S)` — batch 1: the skyline of these results is output as
//!    soon as the phase completes;
//! 2. `LS(S) ⋈ LS(N)`, `LS(N) ⋈ LS(S)`, `LS(N) ⋈ LS(N)` — the final batch
//!    at the end of query evaluation.
//!
//! The paper's Section VII criticism is reproduced measurably: with mapping
//! functions, batch-1 results are **not** guaranteed final (cross-source
//! trade-offs can dominate them later). [`crate::BaselineStats::batch1_false_positives`]
//! counts how many batch-1 tuples the final skyline disowns. The *final*
//! result set is always correct: the last phase recomputes the skyline over
//! all generated candidates.
//!
//! When a mapping function is not separable, the lists degenerate to "all
//! tuples" and SSMJ behaves like JF-SL with a single batch.

use crate::common::{hash_join_into, results_from, BaselineStats, JoinedOutput, SkyAlgo};
use progxe_core::fxhash::{FxHashMap, FxHashSet};
use progxe_core::mapping::MapSet;
use progxe_core::sink::ResultSink;
use progxe_core::source::SourceView;
use progxe_skyline::{bnl_skyline, PointStore, Preference};
use std::time::Instant;

/// Per-source active lists.
#[derive(Debug)]
struct ActiveLists {
    /// Rows in the source-level skyline.
    ls_s: Vec<u32>,
    /// Rows in a group-level skyline but not the source-level one.
    ls_n: Vec<u32>,
    /// Rows dropped entirely (group-dominated).
    pruned: usize,
}

/// Builds `LS(S)` / `LS(N)` from local component scores; `None` when the
/// maps are not separable for this side.
fn build_lists(
    src: &SourceView<'_>,
    maps: &MapSet,
    is_r: bool,
    stats: &mut BaselineStats,
) -> Option<ActiveLists> {
    let n = src.len();
    let k = maps.out_dims();
    let pref = Preference::new(maps.preference().orders().to_vec());
    let mut scores = PointStore::with_capacity(k, n);
    let mut buf = Vec::with_capacity(k);
    for row in 0..n {
        let ok = if is_r {
            maps.r_components(src.attrs_of(row), &mut buf)
        } else {
            maps.t_components(src.attrs_of(row), &mut buf)
        };
        if !ok {
            return None;
        }
        scores.push(&buf);
    }

    // Source-level skyline (ignoring the join attribute).
    let source_sky = bnl_skyline(&scores, &pref);
    stats.dominance_tests += source_sky.stats.dominance_tests;
    let in_ls_s: FxHashSet<u32> = source_sky.indices.iter().map(|&i| i as u32).collect();

    // Group-level skylines per join value.
    let mut groups: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
    for row in 0..n {
        groups
            .entry(src.join_key_of(row))
            .or_default()
            .push(row as u32);
    }
    let mut ls_n = Vec::new();
    let mut kept = in_ls_s.len();
    for rows in groups.values() {
        let mut window: Vec<u32> = Vec::new();
        for &row in rows {
            let p = scores.point(row as usize);
            let mut dominated = false;
            let mut w = 0;
            while w < window.len() {
                stats.dominance_tests += 1;
                let q = scores.point(window[w] as usize);
                if pref.dominates(q, p) {
                    dominated = true;
                    break;
                }
                if pref.dominates(p, q) {
                    window.swap_remove(w);
                } else {
                    w += 1;
                }
            }
            if !dominated {
                window.push(row);
            }
        }
        for row in window {
            if !in_ls_s.contains(&row) {
                ls_n.push(row);
                kept += 1;
            }
        }
    }
    let mut ls_s: Vec<u32> = in_ls_s.into_iter().collect();
    ls_s.sort_unstable();
    ls_n.sort_unstable();
    Some(ActiveLists {
        ls_s,
        ls_n,
        pruned: n - kept,
    })
}

/// Runs SSMJ. Emits batch 1 at the end of phase 1 and the remaining final
/// results at the end; returns counters including the batch-1 false
/// positives (Section VII's unsoundness-under-maps observation).
pub fn ssmj<S: ResultSink + ?Sized>(
    r: &SourceView<'_>,
    t: &SourceView<'_>,
    maps: &MapSet,
    algo: SkyAlgo,
    sink: &mut S,
) -> BaselineStats {
    let start = Instant::now();
    let mut stats = BaselineStats::default();

    let (r_lists, t_lists) = match (
        build_lists(r, maps, true, &mut stats),
        build_lists(t, maps, false, &mut stats),
    ) {
        (Some(a), Some(b)) => (a, b),
        // Non-separable maps: degenerate to a single all-tuples list.
        _ => {
            stats.dominance_tests = 0;
            (
                ActiveLists {
                    ls_s: (0..r.len() as u32).collect(),
                    ls_n: Vec::new(),
                    pruned: 0,
                },
                ActiveLists {
                    ls_s: (0..t.len() as u32).collect(),
                    ls_n: Vec::new(),
                    pruned: 0,
                },
            )
        }
    };
    stats.pruned_r = r_lists.pruned;
    stats.pruned_t = t_lists.pruned;

    // Phase 1: LS(S) ⋈ LS(S) — batch 1 output.
    let mut all = JoinedOutput::new(maps.out_dims());
    hash_join_into(
        r,
        t,
        r_lists.ls_s.iter().copied(),
        t_lists.ls_s.iter().copied(),
        maps,
        &mut all,
    );
    let phase1_sky = algo.run_model(&all.points, maps);
    stats.dominance_tests += phase1_sky.stats.dominance_tests;
    let batch1 = results_from(&all, &phase1_sky.indices);
    let batch1_ids: FxHashSet<(u32, u32)> = batch1.iter().map(|x| (x.r_idx, x.t_idx)).collect();
    stats.batch1_results = batch1.len() as u64;
    if !batch1.is_empty() {
        sink.emit_batch(&batch1);
    }
    stats.first_batch_time = Some(start.elapsed());

    // Phase 2: the remaining three list combinations.
    hash_join_into(
        r,
        t,
        r_lists.ls_s.iter().copied(),
        t_lists.ls_n.iter().copied(),
        maps,
        &mut all,
    );
    hash_join_into(
        r,
        t,
        r_lists.ls_n.iter().copied(),
        t_lists.ls_s.iter().copied(),
        maps,
        &mut all,
    );
    hash_join_into(
        r,
        t,
        r_lists.ls_n.iter().copied(),
        t_lists.ls_n.iter().copied(),
        maps,
        &mut all,
    );
    stats.join_matches = all.len() as u64;

    // Final skyline over every generated candidate (correct result set,
    // under the query's dominance model).
    let final_sky = algo.run_model(&all.points, maps);
    stats.dominance_tests += final_sky.stats.dominance_tests;
    let final_ids: FxHashSet<(u32, u32)> = final_sky
        .indices
        .iter()
        .map(|&i| (all.ids[i].0, all.ids[i].1))
        .collect();
    stats.results = final_ids.len() as u64;
    stats.batch1_false_positives = batch1_ids
        .iter()
        .filter(|id| !final_ids.contains(id))
        .count() as u64;

    let second_batch: Vec<_> = final_sky
        .indices
        .iter()
        .filter(|&&i| !batch1_ids.contains(&(all.ids[i].0, all.ids[i].1)))
        .copied()
        .collect();
    let second = results_from(&all, &second_batch);
    if !second.is_empty() {
        sink.emit_batch(&second);
    }
    stats.total_time = start.elapsed();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{oracle_smj, sorted_ids};
    use progxe_core::sink::{CollectSink, ProgressSink};
    use progxe_core::source::SourceData;

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    fn random_source(n: usize, dims: usize, keys: u32, seed: u64) -> SourceData {
        let mut s = SourceData::new(dims);
        let mut st = seed;
        let mut row = vec![0.0; dims];
        for _ in 0..n {
            for v in row.iter_mut() {
                *v = (lcg(&mut st) % 1000) as f64 / 10.0;
            }
            s.push(&row, (lcg(&mut st) % keys as u64) as u32);
        }
        s
    }

    /// SSMJ's *union of emitted batches* must cover the true skyline, and
    /// the final-skyline stat must match the oracle exactly.
    #[test]
    fn final_results_match_oracle() {
        let r = random_source(150, 2, 5, 1);
        let t = random_source(150, 2, 5, 2);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let expected = sorted_ids(&oracle_smj(&r.view(), &t.view(), &maps));
        let mut sink = CollectSink::default();
        let stats = ssmj(&r.view(), &t.view(), &maps, SkyAlgo::Bnl, &mut sink);
        assert_eq!(stats.results as usize, expected.len());
        // Emitted ⊇ oracle; surplus = batch-1 false positives.
        let emitted = sorted_ids(&sink.results);
        for id in &expected {
            assert!(emitted.contains(id), "missing {id:?}");
        }
        assert_eq!(
            emitted.len(),
            expected.len() + stats.batch1_false_positives as usize
        );
    }

    #[test]
    fn two_batches_at_two_times() {
        let r = random_source(200, 2, 3, 3);
        let t = random_source(200, 2, 3, 4);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let mut sink = ProgressSink::new();
        let stats = ssmj(&r.view(), &t.view(), &maps, SkyAlgo::Bnl, &mut sink);
        assert!(
            sink.records.len() <= 2,
            "SSMJ reports in at most two batches"
        );
        assert!(stats.first_batch_time.unwrap() <= stats.total_time);
    }

    #[test]
    fn group_pruning_is_safe() {
        // Tuples dominated within their join group must not change results.
        let r = random_source(100, 3, 2, 5);
        let t = random_source(100, 3, 2, 6);
        let maps = MapSet::pairwise_sum(3, Preference::all_lowest(3));
        let expected = sorted_ids(&oracle_smj(&r.view(), &t.view(), &maps));
        let mut sink = CollectSink::default();
        let stats = ssmj(&r.view(), &t.view(), &maps, SkyAlgo::Sfs, &mut sink);
        assert!(stats.pruned_r > 0, "expected group pruning on 100×3d×2keys");
        let emitted = sorted_ids(&sink.results);
        for id in &expected {
            assert!(emitted.contains(id));
        }
    }

    /// The paper's Section VII claim, made executable: under mapping
    /// functions, SSMJ's first batch can contain tuples that the final
    /// skyline disowns. Construction: the batch-1 pair (0,10)+(10,0) =
    /// (10,10) is later dominated by the phase-2 pair (2,2)+(1,1) = (3,3),
    /// whose R-side tuple (2,2) is only group-level (it is source-dominated
    /// by (1,1) of a *different* join key, so it sits in LS(N), not LS(S)).
    #[test]
    fn batch1_false_positives_exist_under_maps() {
        let r = SourceData::from_rows(2, &[(&[0.0, 10.0], 0), (&[1.0, 1.0], 0), (&[2.0, 2.0], 1)]);
        let t = SourceData::from_rows(2, &[(&[10.0, 0.0], 0), (&[1.0, 1.0], 1)]);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let mut sink = CollectSink::default();
        let stats = ssmj(&r.view(), &t.view(), &maps, SkyAlgo::Bnl, &mut sink);
        assert_eq!(
            stats.batch1_false_positives, 1,
            "expected exactly one batch-1 false positive, stats: {stats:?}"
        );
        // Final result set is still correct.
        let expected = sorted_ids(&oracle_smj(&r.view(), &t.view(), &maps));
        for id in &expected {
            assert!(sorted_ids(&sink.results).contains(id));
        }
    }

    #[test]
    fn empty_inputs() {
        let r = SourceData::new(2);
        let t = random_source(10, 2, 2, 7);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let mut sink = CollectSink::default();
        let stats = ssmj(&r.view(), &t.view(), &maps, SkyAlgo::Bnl, &mut sink);
        assert_eq!(stats.results, 0);
        assert!(sink.results.is_empty());
    }
}
