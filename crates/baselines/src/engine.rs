//! [`ProgressiveEngine`] implementations for the baselines.
//!
//! Every baseline becomes a first-class engine behind the same pull-based
//! [`QuerySession`] interface as ProgXe, which is what makes their
//! progressiveness directly comparable *and* lets the query layer dispatch
//! uniformly. The baselines are blocking by construction — nothing can be
//! emitted before their (final or, for SSMJ, phase-1) skyline pass — so
//! their sessions are *deferred*: the whole run executes at the first
//! `next_batch` call and its batches are then replayed with their original
//! timestamps. Cancelling a baseline session before the first pull skips
//! the run entirely.
//!
//! SSMJ's phase-1 batch is delivered with `proven_final = false`: under
//! mapping functions those tuples are not guaranteed to survive (the paper's
//! Section VII criticism), and the event stream makes that visible.

use crate::common::{BaselineStats, SkyAlgo};
use crate::jfsl::{jfsl, jfsl_plus};
use crate::saj::saj;
use crate::ssmj::ssmj;
use progxe_core::error::Result;
use progxe_core::mapping::MapSet;
use progxe_core::session::{ProgressiveEngine, QuerySession, ResultEvent};
use progxe_core::sink::ResultSink;
use progxe_core::source::SourceView;
use progxe_core::stats::{ExecStats, ResultTuple};
use std::time::{Duration, Instant};

/// Converts a baseline's counters into the uniform [`ExecStats`] shape
/// reported by [`QuerySession::finish`]. Fields without a baseline
/// equivalent (grid/region counters) stay zero.
pub fn baseline_exec_stats(stats: &BaselineStats) -> ExecStats {
    ExecStats {
        total_time: stats.total_time,
        push_through_pruned_r: stats.pruned_r,
        push_through_pruned_t: stats.pruned_t,
        join_matches: stats.join_matches,
        dominance_tests: stats.dominance_tests,
        threads_used: 1,
        ..ExecStats::default()
    }
}

/// A sink recording each batch with its emission timestamp, for replay
/// through the pull interface.
struct Recorder {
    start: Instant,
    batches: Vec<(Vec<ResultTuple>, Duration)>,
}

impl Recorder {
    /// `start` is the session-open instant, so `ResultEvent::elapsed`
    /// means "time since open" exactly as it does for ProgXe sessions —
    /// including any gap between opening and the first pull.
    fn with_start(start: Instant) -> Self {
        Self {
            start,
            batches: Vec::new(),
        }
    }

    /// Converts the recording into session events plus final stats.
    /// `tentative_first` marks every batch before the last as not proven
    /// final (SSMJ's phase-1 semantics).
    fn into_events(
        self,
        stats: &BaselineStats,
        tentative_first: bool,
    ) -> (Vec<ResultEvent>, ExecStats) {
        let total: u64 = self.batches.iter().map(|(b, _)| b.len() as u64).sum();
        let n_batches = self.batches.len();
        let mut cumulative = 0u64;
        let events = self
            .batches
            .into_iter()
            .enumerate()
            .map(|(i, (tuples, elapsed))| {
                cumulative += tuples.len() as u64;
                ResultEvent {
                    tuples,
                    proven_final: !(tentative_first && i + 1 < n_batches),
                    progress_estimate: cumulative as f64 / total.max(1) as f64,
                    elapsed,
                }
            })
            .collect();
        let mut exec = baseline_exec_stats(stats);
        exec.results_emitted = total;
        (events, exec)
    }
}

impl ResultSink for Recorder {
    fn emit_batch(&mut self, batch: &[ResultTuple]) {
        self.batches.push((batch.to_vec(), self.start.elapsed()));
    }
}

/// JF-SL — the traditional blocking plan; with `push_through`, JF-SL+.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JfSlEngine {
    /// Skyline algorithm for the final pass.
    pub algo: SkyAlgo,
    /// Apply skyline partial push-through to each source (JF-SL+).
    pub push_through: bool,
}

impl JfSlEngine {
    /// Plain JF-SL with the given skyline algorithm.
    #[must_use]
    pub fn new(algo: SkyAlgo) -> Self {
        Self {
            algo,
            push_through: false,
        }
    }

    /// JF-SL+ (push-through pruning enabled).
    #[must_use]
    pub fn plus(algo: SkyAlgo) -> Self {
        Self {
            algo,
            push_through: true,
        }
    }
}

impl ProgressiveEngine for JfSlEngine {
    fn name(&self) -> &'static str {
        if self.push_through {
            "jf-sl+"
        } else {
            "jf-sl"
        }
    }

    fn open<'a>(
        &self,
        r: &SourceView<'a>,
        t: &SourceView<'a>,
        maps: &'a MapSet,
    ) -> Result<QuerySession<'a>> {
        let (r, t, engine) = (*r, *t, *self);
        let opened = Instant::now();
        Ok(QuerySession::deferred(self.name(), move || {
            let mut recorder = Recorder::with_start(opened);
            let stats = if engine.push_through {
                jfsl_plus(&r, &t, maps, engine.algo, &mut recorder)
            } else {
                jfsl(&r, &t, maps, engine.algo, &mut recorder)
            };
            recorder.into_events(&stats, false)
        }))
    }
}

/// SSMJ — the two-batch baseline of Jin et al. (ICDE 2007).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SsmjEngine {
    /// Skyline algorithm for the batch passes.
    pub algo: SkyAlgo,
}

impl SsmjEngine {
    /// SSMJ with the given skyline algorithm.
    #[must_use]
    pub fn new(algo: SkyAlgo) -> Self {
        Self { algo }
    }
}

impl ProgressiveEngine for SsmjEngine {
    fn name(&self) -> &'static str {
        "ssmj"
    }

    fn open<'a>(
        &self,
        r: &SourceView<'a>,
        t: &SourceView<'a>,
        maps: &'a MapSet,
    ) -> Result<QuerySession<'a>> {
        let (r, t, algo) = (*r, *t, self.algo);
        let opened = Instant::now();
        Ok(QuerySession::deferred(self.name(), move || {
            let mut recorder = Recorder::with_start(opened);
            let stats = ssmj(&r, &t, maps, algo, &mut recorder);
            // Phase-1 results are not sound under mapping functions.
            let (events, mut exec) = recorder.into_events(&stats, true);
            exec.results_retracted = stats.batch1_false_positives;
            (events, exec)
        }))
    }
}

/// SAJ — the Fagin/threshold-style baseline (blocking, early data access
/// termination).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SajEngine {
    /// Skyline algorithm for the final pass.
    pub algo: SkyAlgo,
}

impl SajEngine {
    /// SAJ with the given skyline algorithm.
    #[must_use]
    pub fn new(algo: SkyAlgo) -> Self {
        Self { algo }
    }
}

impl ProgressiveEngine for SajEngine {
    fn name(&self) -> &'static str {
        "saj"
    }

    fn open<'a>(
        &self,
        r: &SourceView<'a>,
        t: &SourceView<'a>,
        maps: &'a MapSet,
    ) -> Result<QuerySession<'a>> {
        let (r, t, algo) = (*r, *t, self.algo);
        let opened = Instant::now();
        Ok(QuerySession::deferred(self.name(), move || {
            let mut recorder = Recorder::with_start(opened);
            let stats = saj(&r, &t, maps, algo, &mut recorder);
            recorder.into_events(&stats, false)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{oracle_smj, sorted_ids};
    use progxe_core::sink::CollectSink;
    use progxe_core::source::SourceData;
    use progxe_skyline::Preference;

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    fn random_source(n: usize, dims: usize, keys: u32, seed: u64) -> SourceData {
        let mut s = SourceData::new(dims);
        let mut st = seed;
        let mut row = vec![0.0; dims];
        for _ in 0..n {
            for v in row.iter_mut() {
                *v = (lcg(&mut st) % 1000) as f64 / 10.0;
            }
            s.push(&row, (lcg(&mut st) % keys as u64) as u32);
        }
        s
    }

    fn engines() -> Vec<Box<dyn ProgressiveEngine>> {
        vec![
            Box::new(JfSlEngine::new(SkyAlgo::Bnl)),
            Box::new(JfSlEngine::plus(SkyAlgo::Sfs)),
            Box::new(SsmjEngine::new(SkyAlgo::Bnl)),
            Box::new(SajEngine::new(SkyAlgo::Bnl)),
        ]
    }

    #[test]
    fn sessions_match_sink_paths() {
        let r = random_source(150, 2, 5, 1);
        let t = random_source(150, 2, 5, 2);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        for engine in engines() {
            let mut sink = CollectSink::default();
            engine
                .run_sink(&r.view(), &t.view(), &maps, &mut sink)
                .unwrap();
            let out = engine.run_collect(&r.view(), &t.view(), &maps).unwrap();
            assert_eq!(out.results, sink.results, "{}", engine.name());
            assert_eq!(out.stats.results_emitted as usize, out.results.len());
            assert!(!out.stats.cancelled);
        }
    }

    #[test]
    fn union_of_session_batches_covers_oracle() {
        let r = random_source(120, 2, 4, 3);
        let t = random_source(120, 2, 4, 4);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let expected = sorted_ids(&oracle_smj(&r.view(), &t.view(), &maps));
        for engine in engines() {
            let out = engine.run_collect(&r.view(), &t.view(), &maps).unwrap();
            let emitted = sorted_ids(&out.results);
            for id in &expected {
                assert!(emitted.contains(id), "{} missing {id:?}", engine.name());
            }
        }
    }

    #[test]
    fn all_baselines_compute_the_flexible_skyline() {
        use progxe_core::fdom::{DominanceModel, FDominance, WeightConstraint};
        let r = random_source(120, 2, 4, 11);
        let t = random_source(120, 2, 4, 12);
        let fdom = FDominance::new(
            2,
            vec![
                WeightConstraint::at_least(2, 0, 0.35),
                WeightConstraint::at_most(2, 0, 0.65),
            ],
        )
        .unwrap();
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2))
            .with_dominance(DominanceModel::flexible(fdom))
            .unwrap();
        let pareto_maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let expected = sorted_ids(&oracle_smj(&r.view(), &t.view(), &maps));
        let pareto = sorted_ids(&oracle_smj(&r.view(), &t.view(), &pareto_maps));
        assert!(
            expected.len() < pareto.len(),
            "weight constraints should shrink the answer ({} vs {})",
            expected.len(),
            pareto.len()
        );
        for engine in engines() {
            let out = engine.run_collect(&r.view(), &t.view(), &maps).unwrap();
            let mut emitted = sorted_ids(&out.results);
            emitted.dedup(); // SSMJ batch-1 may repeat final tuples
                             // Emitted must cover the F-skyline; surplus only from SSMJ's
                             // tentative batch 1.
            for id in &expected {
                assert!(emitted.contains(id), "{} missing {id:?}", engine.name());
            }
            if engine.name() != "ssmj" {
                assert_eq!(emitted, expected, "{}", engine.name());
            }
        }
    }

    #[test]
    fn ssmj_first_batch_is_tentative() {
        // The Section VII construction: batch 1 contains a tuple the final
        // skyline disowns, so the stream must not mark it proven final.
        let r = SourceData::from_rows(2, &[(&[0.0, 10.0], 0), (&[1.0, 1.0], 0), (&[2.0, 2.0], 1)]);
        let t = SourceData::from_rows(2, &[(&[10.0, 0.0], 0), (&[1.0, 1.0], 1)]);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let mut session = SsmjEngine::new(SkyAlgo::Bnl)
            .open(&r.view(), &t.view(), &maps)
            .unwrap();
        let mut events = Vec::new();
        while let Some(event) = session.next_batch() {
            events.push(event);
        }
        assert_eq!(events.len(), 2, "construction yields two batches");
        assert!(!events[0].proven_final, "phase-1 batch is tentative");
        assert!(events[1].proven_final);
    }

    #[test]
    fn blocking_engines_emit_single_final_batch() {
        let r = random_source(100, 2, 4, 5);
        let t = random_source(100, 2, 4, 6);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        for engine in [
            Box::new(JfSlEngine::new(SkyAlgo::Bnl)) as Box<dyn ProgressiveEngine>,
            Box::new(SajEngine::new(SkyAlgo::Bnl)),
        ] {
            let mut session = engine.open(&r.view(), &t.view(), &maps).unwrap();
            let event = session.next_batch().expect("one batch");
            assert!(event.proven_final);
            assert!((event.progress_estimate - 1.0).abs() < f64::EPSILON);
            assert!(session.next_batch().is_none());
        }
    }

    #[test]
    fn cancelled_baseline_session_does_no_work() {
        let r = random_source(100, 2, 4, 7);
        let t = random_source(100, 2, 4, 8);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let mut session = JfSlEngine::new(SkyAlgo::Bnl)
            .open(&r.view(), &t.view(), &maps)
            .unwrap();
        session.cancel();
        assert!(session.next_batch().is_none());
        let stats = session.finish();
        assert!(stats.cancelled);
        assert_eq!(stats.join_matches, 0, "join never ran");
    }

    #[test]
    fn take_one_from_baseline() {
        let r = random_source(100, 2, 4, 9);
        let t = random_source(100, 2, 4, 10);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let engine = JfSlEngine::new(SkyAlgo::Bnl);
        let full = engine.run_collect(&r.view(), &t.view(), &maps).unwrap();
        let out = engine.open(&r.view(), &t.view(), &maps).unwrap().take(1);
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0], full.results[0]);
    }
}
