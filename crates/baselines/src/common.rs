//! Shared plumbing for the baselines: join materialization, skyline
//! dispatch, counters, and the test oracle.

use progxe_core::fxhash::FxHashMap;
use progxe_core::mapping::MapSet;
use progxe_core::source::SourceView;
use progxe_core::stats::ResultTuple;
use progxe_skyline::{
    bnl_skyline, bnl_skyline_under, dnc_skyline, naive_skyline, salsa_skyline, sfs_skyline,
    sfs_skyline_under, PointStore, Preference, SkylineResult,
};
use std::str::FromStr;
use std::time::Duration;

/// Which single-set skyline algorithm a baseline uses for its final pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SkyAlgo {
    /// Block-nested-loops (the classic default).
    #[default]
    Bnl,
    /// Sort-filter-skyline.
    Sfs,
    /// Divide & conquer.
    Dnc,
    /// SaLSa (sorted access with early termination).
    Salsa,
}

impl SkyAlgo {
    /// Runs the selected algorithm.
    pub fn run(self, store: &PointStore, pref: &Preference) -> SkylineResult {
        match self {
            SkyAlgo::Bnl => bnl_skyline(store, pref),
            SkyAlgo::Sfs => sfs_skyline(store, pref),
            SkyAlgo::Dnc => dnc_skyline(store, pref),
            SkyAlgo::Salsa => salsa_skyline(store, pref),
        }
    }

    /// Runs the selected algorithm under the query's [`MapSet`] dominance
    /// model. Pareto queries take the historical path unchanged. Under a
    /// flexible model, BNL and SFS run **natively** on the model (both
    /// only need a strict partial order / a strictly monotone presort
    /// score); D&C and SaLSa — whose internals lean on coordinate-wise
    /// Pareto geometry — compute the Pareto skyline first and then apply
    /// the F-dominance filter, which is exact by the composition property
    /// (see `progxe_core::fdom`): every F-dominator of a Pareto-skyline
    /// member either is itself a member or is Pareto-dominated by one that
    /// also F-dominates.
    pub fn run_model(self, store: &PointStore, maps: &MapSet) -> SkylineResult {
        if maps.dominance().is_pareto() {
            return self.run(store, maps.preference());
        }
        let view = maps.dominance_view();
        match self {
            SkyAlgo::Bnl => bnl_skyline_under(store, &view),
            SkyAlgo::Sfs => sfs_skyline_under(store, &view),
            SkyAlgo::Dnc | SkyAlgo::Salsa => {
                let mut pareto = self.run(store, maps.preference());
                fdom_filter_members(store, maps, &mut pareto);
                pareto
            }
        }
    }

    /// Short name for harness output.
    pub fn name(self) -> &'static str {
        match self {
            SkyAlgo::Bnl => "bnl",
            SkyAlgo::Sfs => "sfs",
            SkyAlgo::Dnc => "dnc",
            SkyAlgo::Salsa => "salsa",
        }
    }
}

impl FromStr for SkyAlgo {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "bnl" => Ok(SkyAlgo::Bnl),
            "sfs" => Ok(SkyAlgo::Sfs),
            "dnc" => Ok(SkyAlgo::Dnc),
            "salsa" => Ok(SkyAlgo::Salsa),
            other => Err(format!("unknown skyline algorithm {other:?}")),
        }
    }
}

/// Counters shared by all baseline runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BaselineStats {
    /// Total wall-clock time.
    pub total_time: Duration,
    /// Time of the first output batch (for SSMJ: end of phase 1; for the
    /// blocking baselines this equals `total_time`).
    pub first_batch_time: Option<Duration>,
    /// Join results materialized (after any pruning).
    pub join_matches: u64,
    /// Pairwise dominance tests performed.
    pub dominance_tests: u64,
    /// Tuples pruned from R by source pre-processing (JF-SL+/SSMJ lists).
    pub pruned_r: usize,
    /// Tuples pruned from T by source pre-processing.
    pub pruned_t: usize,
    /// Results emitted (final skyline size).
    pub results: u64,
    /// SSMJ only: size of the first output batch.
    pub batch1_results: u64,
    /// SSMJ only: batch-1 tuples later found dominated — the unsoundness
    /// under mapping functions the paper points out in Section VII.
    pub batch1_false_positives: u64,
    /// SAJ only: tuples accessed per source before the threshold stop.
    pub accessed_r: usize,
    /// SAJ only: tuples accessed on T.
    pub accessed_t: usize,
}

/// Materialized, mapped join output: raw values plus originating row ids.
#[derive(Debug, Default)]
pub struct JoinedOutput {
    /// Mapped output values (raw orientation), one row per join match.
    pub points: PointStore,
    /// `(r_idx, t_idx)` per row.
    pub ids: Vec<(u32, u32)>,
}

impl JoinedOutput {
    /// Creates an empty output buffer for `dims` output attributes.
    pub fn new(dims: usize) -> Self {
        Self {
            points: PointStore::new(dims),
            ids: Vec::new(),
        }
    }

    /// Number of join matches.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no match was produced.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Hash-joins `r ⋈ t` on the join key over the given row subsets, mapping
/// each match into `out`.
pub fn hash_join_into(
    r: &SourceView<'_>,
    t: &SourceView<'_>,
    r_rows: impl Iterator<Item = u32>,
    t_rows: impl Iterator<Item = u32> + Clone,
    maps: &MapSet,
    out: &mut JoinedOutput,
) {
    let mut table: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
    for row in r_rows {
        table
            .entry(r.join_key_of(row as usize))
            .or_default()
            .push(row);
    }
    let mut buf = Vec::with_capacity(maps.out_dims());
    for t_row in t_rows {
        let Some(matches) = table.get(&t.join_key_of(t_row as usize)) else {
            continue;
        };
        for &r_row in matches {
            maps.eval_into(
                r.attrs_of(r_row as usize),
                t.attrs_of(t_row as usize),
                &mut buf,
            );
            out.points.push(&buf);
            out.ids.push((r_row, t_row));
        }
    }
}

/// Converts skyline indices over a [`JoinedOutput`] into result tuples.
pub fn results_from(out: &JoinedOutput, indices: &[usize]) -> Vec<ResultTuple> {
    indices
        .iter()
        .map(|&i| ResultTuple {
            r_idx: out.ids[i].0,
            t_idx: out.ids[i].1,
            values: out.points.point(i).to_vec(),
        })
        .collect()
}

/// Exact flexible-skyline filter over the members of a Pareto skyline:
/// keeps member `i` iff no *member* F-dominates it. Complete by the
/// composition property (every evicted F-dominator is represented by a
/// surviving Pareto dominator that also F-dominates).
fn fdom_filter_members(store: &PointStore, maps: &MapSet, sky: &mut SkylineResult) {
    let members = sky.indices.clone();
    sky.indices.retain(|&i| {
        !members
            .iter()
            .any(|&j| j != i && maps.result_dominates(store.point(j), store.point(i)))
    });
}

/// Reference answer: full nested-loop join + naive skyline under the
/// query's dominance model (Pareto by default, F-dominance for flexible
/// queries). The correctness oracle for every algorithm in the workspace.
pub fn oracle_smj(r: &SourceView<'_>, t: &SourceView<'_>, maps: &MapSet) -> Vec<ResultTuple> {
    let mut out = JoinedOutput::new(maps.out_dims());
    let mut buf = Vec::new();
    for ri in 0..r.len() {
        for ti in 0..t.len() {
            if r.join_key_of(ri) != t.join_key_of(ti) {
                continue;
            }
            maps.eval_into(r.attrs_of(ri), t.attrs_of(ti), &mut buf);
            out.points.push(&buf);
            out.ids.push((ri as u32, ti as u32));
        }
    }
    let sky = if maps.dominance().is_pareto() {
        naive_skyline(&out.points, maps.preference())
    } else {
        progxe_skyline::naive_skyline_under(&out.points, &maps.dominance_view())
    };
    let mut res = results_from(&out, &sky.indices);
    res.sort_by_key(|x| (x.r_idx, x.t_idx));
    res
}

/// Sorts result ids — convenience for set comparisons in tests.
pub fn sorted_ids(results: &[ResultTuple]) -> Vec<(u32, u32)> {
    let mut ids: Vec<(u32, u32)> = results.iter().map(|x| (x.r_idx, x.t_idx)).collect();
    ids.sort_unstable();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use progxe_core::source::SourceData;

    #[test]
    fn hash_join_matches_keys_only() {
        let r = SourceData::from_rows(1, &[(&[1.0], 0), (&[2.0], 1)]);
        let t = SourceData::from_rows(1, &[(&[10.0], 1), (&[20.0], 2)]);
        let maps = MapSet::pairwise_sum(1, Preference::all_lowest(1));
        let mut out = JoinedOutput::new(1);
        hash_join_into(&r.view(), &t.view(), 0..2, 0..2, &maps, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out.ids, vec![(1, 0)]);
        assert_eq!(out.points.point(0), &[12.0]);
    }

    #[test]
    fn hash_join_row_subsets() {
        let r = SourceData::from_rows(1, &[(&[1.0], 0), (&[2.0], 0)]);
        let t = SourceData::from_rows(1, &[(&[10.0], 0)]);
        let maps = MapSet::pairwise_sum(1, Preference::all_lowest(1));
        let mut out = JoinedOutput::new(1);
        hash_join_into(
            &r.view(),
            &t.view(),
            std::iter::once(1u32),
            0..1,
            &maps,
            &mut out,
        );
        assert_eq!(out.ids, vec![(1, 0)]);
    }

    #[test]
    fn oracle_tiny() {
        let r = SourceData::from_rows(1, &[(&[1.0], 0), (&[5.0], 0)]);
        let t = SourceData::from_rows(1, &[(&[1.0], 0)]);
        let maps = MapSet::pairwise_sum(1, Preference::all_lowest(1));
        let res = oracle_smj(&r.view(), &t.view(), &maps);
        assert_eq!(sorted_ids(&res), vec![(0, 0)]);
    }

    #[test]
    fn run_model_agrees_across_algorithms_under_fdominance() {
        use progxe_core::fdom::{DominanceModel, FDominance, WeightConstraint};
        use progxe_skyline::naive_skyline_under;

        let mut rows = Vec::new();
        let mut x: u64 = 31;
        let mut next = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) % 100) as f64 / 10.0
        };
        for _ in 0..80 {
            rows.push([next(), next()]);
        }
        let store = PointStore::from_rows(2, rows.iter());
        let fdom = FDominance::new(
            2,
            vec![
                WeightConstraint::at_least(2, 0, 0.3),
                WeightConstraint::at_most(2, 0, 0.7),
            ],
        )
        .unwrap();
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2))
            .with_dominance(DominanceModel::flexible(fdom))
            .unwrap();
        let expected = naive_skyline_under(&store, &maps.dominance_view()).sorted_indices();
        let pareto = naive_skyline(&store, maps.preference()).sorted_indices();
        assert!(
            expected.len() < pareto.len(),
            "constraints should shrink the skyline ({} vs {})",
            expected.len(),
            pareto.len()
        );
        for algo in [SkyAlgo::Bnl, SkyAlgo::Sfs, SkyAlgo::Dnc, SkyAlgo::Salsa] {
            assert_eq!(
                algo.run_model(&store, &maps).sorted_indices(),
                expected,
                "{algo:?} diverged under the flexible model"
            );
        }
    }

    #[test]
    fn sky_algo_parse_and_run() {
        let store = PointStore::from_rows(2, [[1.0, 2.0], [2.0, 1.0], [3.0, 3.0]]);
        let pref = Preference::all_lowest(2);
        for algo in ["bnl", "sfs", "dnc", "salsa"] {
            let a: SkyAlgo = algo.parse().unwrap();
            assert_eq!(a.run(&store, &pref).sorted_indices(), vec![0, 1]);
            assert_eq!(a.name(), algo);
        }
        assert!("nope".parse::<SkyAlgo>().is_err());
    }
}
