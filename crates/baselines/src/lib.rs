//! State-of-the-art baselines for skyline-over-join evaluation
//! (Section VI-A of the paper).
//!
//! * [`jfsl`](mod@jfsl) — **JF-SL**: the traditional blocking plan (Figure 1.b):
//!   hash join → map → skyline, one output batch at the very end. **JF-SL+**
//!   adds skyline partial push-through pruning on each source.
//! * [`ssmj`](mod@ssmj) — **SSMJ** (Jin et al., "The multi-relational skyline
//!   operator", ICDE 2007), as characterized in the paper: per-source
//!   source-level (`LS(S)`) and group-level (`LS(N)`) lists, four join
//!   phases, and results reported in *two batches*.
//! * [`saj`](mod@saj) — **SAJ**: a Fagin/threshold-style algorithm over per-dimension
//!   sorted access, following the join-first/skyline-later paradigm
//!   (blocking output, but with early termination of data access).
//!
//! All baselines consume the same inputs as ProgXe ([`SourceView`],
//! [`MapSet`]) and push [`ResultTuple`] batches through the same
//! [`ResultSink`] abstraction, so progressiveness curves are directly
//! comparable. The [`engine`] module additionally wraps each of them in the
//! workspace-wide [`ProgressiveEngine`] interface, giving every baseline
//! the same pull-based [`QuerySession`] consumption model as ProgXe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod engine;
pub mod jfsl;
pub mod saj;
pub mod ssmj;

pub use common::{oracle_smj, BaselineStats, SkyAlgo};
pub use engine::{baseline_exec_stats, JfSlEngine, SajEngine, SsmjEngine};
pub use jfsl::{jfsl, jfsl_plus};
pub use saj::saj;
pub use ssmj::ssmj;

pub use progxe_core::mapping::MapSet;
pub use progxe_core::session::{ProgressiveEngine, QuerySession, ResultEvent};
pub use progxe_core::sink::ResultSink;
pub use progxe_core::source::SourceView;
pub use progxe_core::stats::ResultTuple;
