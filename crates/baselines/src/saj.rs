//! SAJ — a Fagin/threshold-style skyline-over-join algorithm.
//!
//! The paper describes SAJ only as "extended the popular Fagin technique
//! \[15\] following the JF-SL paradigm" (Section VI-A); we reconstruct a
//! sound variant (DESIGN.md §5.7):
//!
//! * each source keeps one list per output dimension, sorted ascending by
//!   the *oriented* local component score `g_j`;
//! * lists are consumed round-robin (Fagin-style sorted access); a tuple is
//!   *seen* when encountered in any list, and newly seen tuples are
//!   immediately equi-joined against all seen tuples of the other source;
//! * after each round, a **virtual threshold point** lower-bounds the
//!   output of any join pair involving an unseen tuple:
//!   `τ_j = min(frontier_R[j] + min_T[j], min_R[j] + frontier_T[j])`
//!   (sorted lists bound unseen tuples by the frontier; the partner is
//!   bounded by its global minimum). If some already-generated result
//!   dominates `τ`, no unseen pair can ever enter the skyline — sorted
//!   access stops;
//! * the skyline of all generated pairs is output as one batch (SAJ is
//!   blocking, like all JF-SL-paradigm methods).
//!
//! Requires separable maps (as does any per-source sorted access); falls
//! back to plain JF-SL otherwise.

use crate::common::{results_from, BaselineStats, JoinedOutput, SkyAlgo};
use crate::jfsl::jfsl;
use progxe_core::fxhash::FxHashMap;
use progxe_core::mapping::MapSet;
use progxe_core::sink::ResultSink;
use progxe_core::source::SourceView;
use progxe_skyline::{bnl::BnlWindow, PointStore, Preference};
use std::time::Instant;

/// Oriented local scores + sorted per-dimension access lists of one source.
struct SortedSource {
    scores: PointStore,
    /// One list per dimension: row ids sorted ascending by that score.
    lists: Vec<Vec<u32>>,
    /// Per-dimension global minimum score.
    mins: Vec<f64>,
    /// Current position in each list.
    pos: Vec<usize>,
    seen: Vec<bool>,
    seen_count: usize,
    /// Seen rows grouped by join key (for incremental joining).
    seen_by_key: FxHashMap<u32, Vec<u32>>,
}

impl SortedSource {
    fn build(src: &SourceView<'_>, maps: &MapSet, is_r: bool) -> Option<Self> {
        let n = src.len();
        let k = maps.out_dims();
        let orders = maps.preference().orders();
        let mut scores = PointStore::with_capacity(k, n);
        let mut buf = Vec::with_capacity(k);
        let mut oriented = vec![0.0; k];
        for row in 0..n {
            let ok = if is_r {
                maps.r_components(src.attrs_of(row), &mut buf)
            } else {
                maps.t_components(src.attrs_of(row), &mut buf)
            };
            if !ok {
                return None;
            }
            for (j, (&v, o)) in buf.iter().zip(orders).enumerate() {
                oriented[j] = o.orient(v);
            }
            scores.push(&oriented);
        }
        let mut lists = Vec::with_capacity(k);
        let mut mins = Vec::with_capacity(k);
        for j in 0..k {
            let mut list: Vec<u32> = (0..n as u32).collect();
            list.sort_by(|&a, &b| {
                scores
                    .value(a as usize, j)
                    .total_cmp(&scores.value(b as usize, j))
            });
            mins.push(
                list.first()
                    .map_or(f64::INFINITY, |&row| scores.value(row as usize, j)),
            );
            lists.push(list);
        }
        Some(Self {
            scores,
            lists,
            mins,
            pos: vec![0; k],
            seen: vec![false; n],
            seen_count: 0,
            seen_by_key: FxHashMap::default(),
        })
    }

    fn len(&self) -> usize {
        self.seen.len()
    }

    fn exhausted(&self) -> bool {
        self.seen_count == self.len()
    }

    /// Advances every list one step; returns rows newly seen this round.
    fn advance(&mut self, src: &SourceView<'_>) -> Vec<u32> {
        let mut fresh = Vec::new();
        for j in 0..self.lists.len() {
            while self.pos[j] < self.lists[j].len() {
                let row = self.lists[j][self.pos[j]];
                self.pos[j] += 1;
                if !self.seen[row as usize] {
                    self.seen[row as usize] = true;
                    self.seen_count += 1;
                    self.seen_by_key
                        .entry(src.join_key_of(row as usize))
                        .or_default()
                        .push(row);
                    fresh.push(row);
                    break;
                }
                // Already seen through another list: move to the next entry
                // so each round contributes one *new* tuple per list.
            }
        }
        fresh
    }

    /// Frontier value of dimension `j`: a lower bound on `g_j` of every
    /// unseen tuple.
    fn frontier(&self, j: usize) -> f64 {
        let list = &self.lists[j];
        if self.pos[j] >= list.len() {
            f64::INFINITY
        } else {
            self.scores.value(list[self.pos[j]] as usize, j)
        }
    }
}

/// Reusable buffers for pair materialization.
struct PairScratch {
    raw: Vec<f64>,
    oriented: Vec<f64>,
}

/// Materializes one join pair: map, record, and offer to the threshold
/// window (oriented).
#[allow(clippy::too_many_arguments)]
fn push_pair(
    r: &SourceView<'_>,
    t: &SourceView<'_>,
    maps: &MapSet,
    orders: &[progxe_skyline::Order],
    r_row: u32,
    t_row: u32,
    out: &mut JoinedOutput,
    window: &mut BnlWindow<()>,
    scratch: &mut PairScratch,
) {
    maps.eval_into(
        r.attrs_of(r_row as usize),
        t.attrs_of(t_row as usize),
        &mut scratch.raw,
    );
    out.points.push(&scratch.raw);
    out.ids.push((r_row, t_row));
    for (j, (&v, o)) in scratch.raw.iter().zip(orders).enumerate() {
        scratch.oriented[j] = o.orient(v);
    }
    window.offer(&scratch.oriented, ());
}

/// Runs SAJ. Emits one batch at the end; `stats.accessed_*` report how much
/// of each source the threshold allowed it to skip.
pub fn saj<S: ResultSink + ?Sized>(
    r: &SourceView<'_>,
    t: &SourceView<'_>,
    maps: &MapSet,
    algo: SkyAlgo,
    sink: &mut S,
) -> BaselineStats {
    let start = Instant::now();
    let (Some(mut sr), Some(mut st)) = (
        SortedSource::build(r, maps, true),
        SortedSource::build(t, maps, false),
    ) else {
        // Non-separable maps: no sorted access possible — JF-SL fallback.
        return jfsl(r, t, maps, algo, sink);
    };

    let k = maps.out_dims();
    let orders = maps.preference().orders().to_vec();
    let pref_min = Preference::all_lowest(k);
    let mut out = JoinedOutput::new(k);
    // Window over *oriented* outputs for the threshold test.
    let mut window: BnlWindow<()> = BnlWindow::new(pref_min.clone());
    let mut scratch = PairScratch {
        raw: Vec::with_capacity(k),
        oriented: vec![0.0; k],
    };
    let mut stats = BaselineStats::default();

    let mut tau = vec![0.0f64; k];
    while !(sr.exhausted() && st.exhausted()) {
        let fresh_r = sr.advance(r);
        let fresh_t = st.advance(t);
        // Join fresh R rows against all seen T rows (which already include
        // this round's fresh T rows). Fresh T rows are then joined only
        // against previously-seen R rows, so fresh×fresh pairs appear
        // exactly once.
        let prev_seen_r: FxHashMap<u32, Vec<u32>> = {
            let mut m = sr.seen_by_key.clone();
            for &row in &fresh_r {
                if let Some(v) = m.get_mut(&r.join_key_of(row as usize)) {
                    v.retain(|&x| x != row);
                }
            }
            m
        };
        for &r_row in &fresh_r {
            let key = r.join_key_of(r_row as usize);
            let Some(partners) = st.seen_by_key.get(&key) else {
                continue;
            };
            for &t_row in partners {
                push_pair(
                    r,
                    t,
                    maps,
                    &orders,
                    r_row,
                    t_row,
                    &mut out,
                    &mut window,
                    &mut scratch,
                );
            }
        }
        for &t_row in &fresh_t {
            let key = t.join_key_of(t_row as usize);
            let Some(partners) = prev_seen_r.get(&key) else {
                continue;
            };
            for &r_row in partners {
                push_pair(
                    r,
                    t,
                    maps,
                    &orders,
                    r_row,
                    t_row,
                    &mut out,
                    &mut window,
                    &mut scratch,
                );
            }
        }

        // Threshold: can any unseen-involved pair still matter?
        for (j, tj) in tau.iter_mut().enumerate() {
            *tj = (sr.frontier(j) + st.mins[j]).min(sr.mins[j] + st.frontier(j));
        }
        if tau.iter().all(|v| v.is_finite()) && window.is_dominated(&tau) {
            break;
        }
    }

    stats.accessed_r = sr.seen_count;
    stats.accessed_t = st.seen_count;
    stats.join_matches = out.len() as u64;
    // The threshold stop above is Pareto-based and stays sound under a
    // flexible model: a generated pair that Pareto-dominates τ also
    // F-dominates every unseen-involved pair (Pareto ⇒ F-dominance), so
    // none of them can enter the F-skyline either. The final pass then
    // runs under the query's model.
    let sky = algo.run_model(&out.points, maps);
    stats.dominance_tests = sky.stats.dominance_tests + window.stats().dominance_tests;
    let results = results_from(&out, &sky.indices);
    stats.results = results.len() as u64;
    if !results.is_empty() {
        sink.emit_batch(&results);
    }
    stats.first_batch_time = Some(start.elapsed());
    stats.total_time = start.elapsed();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{oracle_smj, sorted_ids};
    use progxe_core::sink::CollectSink;
    use progxe_core::source::SourceData;

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    fn random_source(n: usize, dims: usize, keys: u32, seed: u64) -> SourceData {
        let mut s = SourceData::new(dims);
        let mut st = seed;
        let mut row = vec![0.0; dims];
        for _ in 0..n {
            for v in row.iter_mut() {
                *v = (lcg(&mut st) % 1000) as f64 / 10.0;
            }
            s.push(&row, (lcg(&mut st) % keys as u64) as u32);
        }
        s
    }

    #[test]
    fn matches_oracle() {
        let r = random_source(120, 2, 5, 1);
        let t = random_source(120, 2, 5, 2);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let expected = sorted_ids(&oracle_smj(&r.view(), &t.view(), &maps));
        let mut sink = CollectSink::default();
        let stats = saj(&r.view(), &t.view(), &maps, SkyAlgo::Bnl, &mut sink);
        assert_eq!(sorted_ids(&sink.results), expected);
        assert_eq!(stats.results as usize, expected.len());
    }

    #[test]
    fn matches_oracle_3d() {
        let r = random_source(90, 3, 4, 3);
        let t = random_source(90, 3, 4, 4);
        let maps = MapSet::pairwise_sum(3, Preference::all_lowest(3));
        let expected = sorted_ids(&oracle_smj(&r.view(), &t.view(), &maps));
        let mut sink = CollectSink::default();
        saj(&r.view(), &t.view(), &maps, SkyAlgo::Sfs, &mut sink);
        assert_eq!(sorted_ids(&sink.results), expected);
    }

    #[test]
    fn correlated_data_stops_early() {
        // Strongly correlated data: the best few tuples dominate the rest,
        // so the threshold must fire long before the sources are exhausted.
        let mut r = SourceData::new(2);
        let mut t = SourceData::new(2);
        for i in 0..500 {
            let v = i as f64;
            r.push(&[v, v + 0.5], 0);
            t.push(&[v, v + 0.25], 0);
        }
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let mut sink = CollectSink::default();
        let stats = saj(&r.view(), &t.view(), &maps, SkyAlgo::Bnl, &mut sink);
        assert!(
            stats.accessed_r < 500 && stats.accessed_t < 500,
            "no early stop: accessed {}x{}",
            stats.accessed_r,
            stats.accessed_t
        );
        let expected = sorted_ids(&oracle_smj(&r.view(), &t.view(), &maps));
        assert_eq!(sorted_ids(&sink.results), expected);
    }

    #[test]
    fn anti_correlated_data_scans_most() {
        let mut r = SourceData::new(2);
        let mut t = SourceData::new(2);
        for i in 0..100 {
            let v = i as f64;
            r.push(&[v, 100.0 - v], 0);
            t.push(&[v, 100.0 - v], 0);
        }
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let mut sink = CollectSink::default();
        let stats = saj(&r.view(), &t.view(), &maps, SkyAlgo::Bnl, &mut sink);
        let expected = sorted_ids(&oracle_smj(&r.view(), &t.view(), &maps));
        assert_eq!(sorted_ids(&sink.results), expected);
        assert_eq!(
            stats.accessed_r, 100,
            "anti-correlated defeats the threshold"
        );
    }

    #[test]
    fn mixed_directions_match_oracle() {
        use progxe_skyline::Order;
        let r = random_source(80, 2, 4, 5);
        let t = random_source(80, 2, 4, 6);
        let maps = MapSet::pairwise_sum(2, Preference::new(vec![Order::Lowest, Order::Highest]));
        let expected = sorted_ids(&oracle_smj(&r.view(), &t.view(), &maps));
        let mut sink = CollectSink::default();
        saj(&r.view(), &t.view(), &maps, SkyAlgo::Bnl, &mut sink);
        assert_eq!(sorted_ids(&sink.results), expected);
    }

    #[test]
    fn empty_source() {
        let r = SourceData::new(2);
        let t = random_source(10, 2, 2, 7);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let mut sink = CollectSink::default();
        let stats = saj(&r.view(), &t.view(), &maps, SkyAlgo::Bnl, &mut sink);
        assert_eq!(stats.results, 0);
    }
}
