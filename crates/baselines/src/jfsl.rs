//! JF-SL and JF-SL+: the traditional blocking plan (Figure 1.b).
//!
//! "The traditional approach is to view skyline processing independent from
//! join evaluation. … the skyline operation has to wait until all join
//! results have been generated and inspected to even begin to generate a
//! skyline result over them." JF-SL therefore produces exactly one output
//! batch, at the very end — the yardstick for blocking behaviour.
//!
//! JF-SL+ applies skyline partial push-through (group-level, map-aware —
//! see [`progxe_core::pushthrough`]) to each source before the join.

use crate::common::{hash_join_into, results_from, BaselineStats, JoinedOutput, SkyAlgo};
use progxe_core::mapping::MapSet;
use progxe_core::pushthrough::{push_through, Side};
use progxe_core::sink::ResultSink;
use progxe_core::source::SourceView;
use std::time::Instant;

/// Runs JF-SL: join-first, skyline-later, one batch at the end.
pub fn jfsl<S: ResultSink + ?Sized>(
    r: &SourceView<'_>,
    t: &SourceView<'_>,
    maps: &MapSet,
    algo: SkyAlgo,
    sink: &mut S,
) -> BaselineStats {
    run(r, t, maps, algo, false, sink)
}

/// Runs JF-SL+: push-through pruning on both sources, then JF-SL.
pub fn jfsl_plus<S: ResultSink + ?Sized>(
    r: &SourceView<'_>,
    t: &SourceView<'_>,
    maps: &MapSet,
    algo: SkyAlgo,
    sink: &mut S,
) -> BaselineStats {
    run(r, t, maps, algo, true, sink)
}

fn run<S: ResultSink + ?Sized>(
    r: &SourceView<'_>,
    t: &SourceView<'_>,
    maps: &MapSet,
    algo: SkyAlgo,
    push: bool,
    sink: &mut S,
) -> BaselineStats {
    let start = Instant::now();
    let mut stats = BaselineStats::default();

    let (r_rows, t_rows) = if push {
        let kr = push_through(r, maps, Side::R).unwrap_or_else(|| (0..r.len() as u32).collect());
        let kt = push_through(t, maps, Side::T).unwrap_or_else(|| (0..t.len() as u32).collect());
        stats.pruned_r = r.len() - kr.len();
        stats.pruned_t = t.len() - kt.len();
        (kr, kt)
    } else {
        (
            (0..r.len() as u32).collect::<Vec<_>>(),
            (0..t.len() as u32).collect::<Vec<_>>(),
        )
    };

    let mut out = JoinedOutput::new(maps.out_dims());
    hash_join_into(
        r,
        t,
        r_rows.iter().copied(),
        t_rows.iter().copied(),
        maps,
        &mut out,
    );
    stats.join_matches = out.len() as u64;

    let sky = algo.run_model(&out.points, maps);
    stats.dominance_tests = sky.stats.dominance_tests;
    let results = results_from(&out, &sky.indices);
    stats.results = results.len() as u64;
    if !results.is_empty() {
        sink.emit_batch(&results);
    }
    stats.first_batch_time = Some(start.elapsed());
    stats.total_time = start.elapsed();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{oracle_smj, sorted_ids};
    use progxe_core::sink::{CollectSink, ProgressSink};
    use progxe_core::source::SourceData;
    use progxe_skyline::Preference;

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    fn random_source(n: usize, dims: usize, keys: u32, seed: u64) -> SourceData {
        let mut s = SourceData::new(dims);
        let mut st = seed;
        let mut row = vec![0.0; dims];
        for _ in 0..n {
            for v in row.iter_mut() {
                *v = (lcg(&mut st) % 1000) as f64 / 10.0;
            }
            s.push(&row, (lcg(&mut st) % keys as u64) as u32);
        }
        s
    }

    #[test]
    fn jfsl_matches_oracle_all_algorithms() {
        let r = random_source(120, 2, 6, 1);
        let t = random_source(120, 2, 6, 2);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let expected = sorted_ids(&oracle_smj(&r.view(), &t.view(), &maps));
        for algo in [SkyAlgo::Bnl, SkyAlgo::Sfs, SkyAlgo::Dnc, SkyAlgo::Salsa] {
            let mut sink = CollectSink::default();
            let stats = jfsl(&r.view(), &t.view(), &maps, algo, &mut sink);
            assert_eq!(sorted_ids(&sink.results), expected, "algo {algo:?}");
            assert_eq!(stats.results as usize, expected.len());
        }
    }

    #[test]
    fn jfsl_plus_matches_jfsl() {
        let r = random_source(150, 3, 4, 3);
        let t = random_source(150, 3, 4, 4);
        let maps = MapSet::pairwise_sum(3, Preference::all_lowest(3));
        let mut plain = CollectSink::default();
        let mut plus = CollectSink::default();
        jfsl(&r.view(), &t.view(), &maps, SkyAlgo::Bnl, &mut plain);
        let stats = jfsl_plus(&r.view(), &t.view(), &maps, SkyAlgo::Bnl, &mut plus);
        assert_eq!(sorted_ids(&plain.results), sorted_ids(&plus.results));
        assert!(stats.pruned_r + stats.pruned_t > 0, "pruning should bite");
    }

    #[test]
    fn jfsl_is_blocking_single_batch() {
        let r = random_source(80, 2, 4, 5);
        let t = random_source(80, 2, 4, 6);
        let maps = MapSet::pairwise_sum(2, Preference::all_lowest(2));
        let mut sink = ProgressSink::new();
        jfsl(&r.view(), &t.view(), &maps, SkyAlgo::Bnl, &mut sink);
        assert_eq!(sink.records.len(), 1, "exactly one batch, at the end");
    }

    #[test]
    fn empty_join_emits_nothing() {
        let r = SourceData::from_rows(1, &[(&[1.0], 0)]);
        let t = SourceData::from_rows(1, &[(&[1.0], 1)]);
        let maps = MapSet::pairwise_sum(1, Preference::all_lowest(1));
        let mut sink = CollectSink::default();
        let stats = jfsl(&r.view(), &t.view(), &maps, SkyAlgo::Bnl, &mut sink);
        assert!(sink.results.is_empty());
        assert_eq!(stats.join_matches, 0);
    }
}
